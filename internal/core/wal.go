package core

import (
	"fmt"
	"log"
	"time"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/membership"
	"kite/internal/paxos"
	"kite/internal/wal"
)

// Write-ahead-log wiring: translating store mutation events into WAL
// records on the way down, and WAL records back into store/consensus
// state on the way up (boot replay). Replay runs before the node's
// rejoin sweep, so the sweep reconciles only the delta the node missed
// while down — and, critically, replay restores the
// accepted-but-uncommitted Paxos rounds and standing promises that no
// peer can vouch for (see DESIGN.md "Recovery").

// walReplayedConfig tracks the highest-epoch group configuration seen
// during replay (config commits, snapshot entries or explicit config
// records), so a restarted node boots under the newest configuration it
// had durably installed rather than a stale Initial.
type walReplayedConfig struct {
	cfg membership.Config
	ok  bool
}

func (rc *walReplayedConfig) observe(val []byte) {
	if c, err := membership.Decode(val); err == nil && (!rc.ok || c.Epoch > rc.cfg.Epoch) {
		rc.cfg, rc.ok = c, true
	}
}

// replayRecord applies one WAL record to the store. Every application
// is guarded or idempotent — stale records lose to later ones exactly
// as the live handlers would have decided — so replaying any prefix of
// history, or records already covered by a snapshot, is harmless.
func replayRecord(store *kvs.Store, r *wal.Record, rc *walReplayedConfig) {
	switch r.Kind {
	case wal.KindWrite:
		store.Apply(r.Key, r.Value, llc.Unpack(r.Stamp))
	case wal.KindPromise:
		paxos.ReplayPromise(store, r.Key, r.Slot, llc.Unpack(r.Stamp))
	case wal.KindAccept:
		paxos.ReplayAccept(store, r.Key, r.Slot, llc.Unpack(r.Stamp), r.Value, r.Origin)
	case wal.KindCommit:
		paxos.ApplyCommit(store, r.Key, r.Slot, llc.Unpack(r.Stamp), r.Value, r.Origin, r.Origins)
		if r.Key == membership.ConfigKey {
			rc.observe(r.Value)
		}
	case wal.KindImport:
		paxos.ImportCommitted(store, r.Key, r.Slot, r.Origin, r.Origins)
	case wal.KindConfig:
		rc.observe(r.Value)
	case wal.KindSnapEntry:
		store.Apply(r.Key, r.Value, llc.Unpack(r.Stamp))
		paxos.RestoreState(store, r.Key, paxos.Persisted{
			Slot:       r.Slot,
			Promised:   llc.Unpack(r.Promised),
			AccBallot:  llc.Unpack(r.AccBallot),
			LastBallot: llc.Unpack(r.LastBallot),
			AccVal:     r.AccVal,
			AccOrigin:  r.AccOrigin,
			LastOrigin: r.Origin,
			Recent:     r.Origins,
		})
		if r.Key == membership.ConfigKey {
			rc.observe(r.Value)
		}
	case wal.KindBoot:
		// Incarnation bookkeeping only; wal.Open already consumed it.
	}
}

// openWAL opens and replays the node's log into its (fresh) store,
// adopting the effective incarnation and any newer replayed group
// configuration into boot. Called from NewNode before the membership
// check, so a node removed from the group while down fails construction
// the same way a mis-addressed fresh boot does.
func (nd *Node) openWAL(boot *membership.Config) error {
	var rc walReplayedConfig
	lg, res, err := wal.Open(wal.Options{
		Dir:           nd.cfg.WALDir,
		FsyncInterval: nd.cfg.FsyncInterval,
		SnapshotEvery: nd.cfg.SnapshotEvery,
		Incarnation:   nd.cfg.Incarnation,
	}, func(r *wal.Record) { replayRecord(nd.Store, r, &rc) })
	if err != nil {
		return fmt.Errorf("core: wal open: %w", err)
	}
	if res.Incarnation >= 0xffff {
		lg.Close()
		return fmt.Errorf("core: wal-derived incarnation %d outside [0,65535)", res.Incarnation)
	}
	nd.cfg.Incarnation = res.Incarnation
	nd.wal = lg
	nd.walRestored = res.Restored
	nd.walSync = nd.cfg.FsyncInterval < 0
	if rc.ok && rc.cfg.Epoch > boot.Epoch {
		*boot = rc.cfg
	}
	return nil
}

// walHook is the store mutation hook: it runs inside bucket critical
// sections, so WAL order equals per-key mutation order by construction.
// Append only buffers (waking the flusher just when the batch has grown
// past its threshold) — no I/O under the bucket lock.
func (nd *Node) walHook(ev kvs.Event) {
	r := wal.Record{
		Epoch:   nd.ConfigEpoch(),
		Key:     ev.Key,
		Slot:    ev.Slot,
		Origin:  ev.Origin,
		Stamp:   ev.Stamp.Pack(),
		Value:   ev.Value,
		Origins: ev.Origins,
	}
	switch ev.Kind {
	case kvs.EvWrite:
		r.Kind = wal.KindWrite
	case kvs.EvPromise:
		r.Kind = wal.KindPromise
	case kvs.EvAccept:
		r.Kind = wal.KindAccept
	case kvs.EvCommit:
		r.Kind = wal.KindCommit
	case kvs.EvImport:
		r.Kind = wal.KindImport
	default:
		return
	}
	nd.wal.Append(r)
}

// snapshotStore emits one KindSnapEntry per key: the entry's value and
// stamp plus the full per-key consensus state. emit only buffers in
// memory (the wal package's contract), so holding the bucket lock
// across it is safe.
func (nd *Node) snapshotStore(emit func(*wal.Record)) {
	var buf [kvs.MaxValueLen]byte
	epoch := nd.ConfigEpoch()
	for i := 0; i < nd.Store.NumBuckets(); i++ {
		nd.Store.SnapshotBucket(i, func(e *kvs.Entry) {
			r := wal.Record{
				Kind:  wal.KindSnapEntry,
				Epoch: epoch,
				Key:   e.Key(),
				Stamp: e.Stamp().Pack(),
				Value: append([]byte(nil), e.ValueInto(buf[:])...),
			}
			if p, ok := paxos.ExportState(e.Meta()); ok {
				r.Slot = p.Slot
				r.Promised = p.Promised.Pack()
				r.AccBallot = p.AccBallot.Pack()
				r.LastBallot = p.LastBallot.Pack()
				r.AccOrigin = p.AccOrigin
				r.AccVal = p.AccVal
				r.Origin = p.LastOrigin
				r.Origins = p.Recent
			}
			emit(&r)
		})
	}
}

// snapshotLoop periodically folds the log into a store snapshot once
// enough records have accumulated, bounding replay length and disk
// usage. Runs until the node stops. A failed snapshot is not fatal —
// durability is intact, the log just keeps growing — but it must not be
// silent either: each distinct error is logged once, and the loop keeps
// retrying at the poll cadence.
func (nd *Node) snapshotLoop() {
	const poll = 100 * time.Millisecond
	t := time.NewTicker(poll)
	defer t.Stop()
	lastErr := ""
	for {
		select {
		case <-nd.stopCh:
			return
		case <-t.C:
			if !nd.wal.SnapshotDue() {
				continue
			}
			if err := nd.wal.Snapshot(nd.snapshotStore); err != nil {
				if s := err.Error(); s != lastErr {
					lastErr = s
					log.Printf("kite: node %d: wal snapshot failed (will retry, log grows unbounded until it succeeds): %v", nd.ID, err)
				}
			} else {
				lastErr = ""
			}
		}
	}
}

// walFailed records the node's first WAL failure and crash-stops it: a
// log that can no longer make records durable must not keep
// acknowledging work. A dead replica is recoverable — restart it against
// the log's durable prefix, or wipe and resweep from peers — while a
// silently memory-only replica breaks every durability promise the WAL
// was enabled for. Called by workers from syncWAL; the Stop runs on its
// own goroutine because Stop waits for the workers themselves.
func (nd *Node) walFailed(err error) {
	if !nd.walErr.CompareAndSwap(nil, &err) {
		return
	}
	log.Printf("kite: node %d: write-ahead log failure, stopping node: %v", nd.ID, err)
	go nd.Stop()
}

// WALErr reports the write-ahead-log failure that stopped the node, if
// any. Stopped()==true with a non-nil WALErr distinguishes a durability
// crash-stop from an operator stop.
func (nd *Node) WALErr() error {
	if p := nd.walErr.Load(); p != nil {
		return *p
	}
	return nil
}
