package core

import (
	"time"

	"kite/internal/transport"
)

// Cluster is the in-process deployment helper: N nodes wired through a
// fault-injectable transport, as used by the tests, benchmarks and examples.
// Multi-process deployments build Nodes directly over a UDP transport
// (cmd/kite-node).
type Cluster struct {
	cfg    Config
	inner  *transport.InProc
	faults *transport.FaultInjector
	nodes  []*Node
}

// NewCluster builds and starts an in-process deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	inner := transport.NewInProc(cfg.Nodes, cfg.Workers, cfg.MailboxDepth)
	faults := transport.NewFaultInjector(inner, 1)
	c := &Cluster{cfg: cfg, inner: inner, faults: faults}
	for id := 0; id < cfg.Nodes; id++ {
		nd, err := NewNode(uint8(id), cfg, faults)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the replication degree.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns the i-th replica.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Faults exposes the fault injector for failure studies: drop or delay
// links, partition nodes.
func (c *Cluster) Faults() *transport.FaultInjector { return c.faults }

// PauseNode makes replica i unresponsive for d (the sleeping-replica
// failure of §8.4).
func (c *Cluster) PauseNode(i int, d time.Duration) { c.nodes[i].Pause(d) }

// CompletedTotal sums completed operations across all replicas.
func (c *Cluster) CompletedTotal() uint64 {
	var t uint64
	for _, nd := range c.nodes {
		t += nd.CompletedTotal()
	}
	return t
}

// Close stops every node and the transport.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Stop()
		}
	}
	c.faults.Close()
}
