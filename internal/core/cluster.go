package core

import (
	"sync"
	"time"

	"kite/internal/transport"
)

// Cluster is the in-process deployment helper: N nodes wired through a
// fault-injectable transport, as used by the tests, benchmarks and examples.
// Multi-process deployments build Nodes directly over a UDP transport
// (cmd/kite-node).
type Cluster struct {
	cfg    Config
	inner  *transport.InProc
	faults *transport.FaultInjector

	// mu guards nodes: RestartNode swaps a slot while harness goroutines
	// read others (never a hot path — protocol traffic does not touch it).
	mu    sync.RWMutex
	nodes []*Node
}

// NewCluster builds and starts an in-process deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	inner := transport.NewInProc(cfg.Nodes, cfg.Workers, cfg.MailboxDepth)
	faults := transport.NewFaultInjector(inner, 1)
	c := &Cluster{cfg: cfg, inner: inner, faults: faults}
	for id := 0; id < cfg.Nodes; id++ {
		nd, err := NewNode(uint8(id), cfg, faults)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the replication degree.
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Node returns the i-th replica (the current incarnation, after restarts).
func (c *Cluster) Node(i int) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[i]
}

// Faults exposes the fault injector for failure studies: drop or delay
// links, partition nodes.
func (c *Cluster) Faults() *transport.FaultInjector { return c.faults }

// PauseNode makes replica i unresponsive for d (the sleeping-replica
// failure of §8.4).
func (c *Cluster) PauseNode(i int, d time.Duration) { c.Node(i).Pause(d) }

// StopNode crash-stops replica i: its workers exit, outstanding requests
// fail with ErrStopped, and — unlike a pause — its in-memory state is as
// good as gone, because only RestartNode brings the slot back.
func (c *Cluster) StopNode(i int) { c.Node(i).Stop() }

// RestartNode replaces replica i with a fresh, empty node of the same id
// on the same transport — the crash-recovery failure the sleeping-replica
// study cannot model, since a restarted replica has lost every write it
// ever acknowledged. The new incarnation boots in catch-up mode
// (Config.Rejoin): it buffers client requests and serves nothing until its
// anti-entropy sweep against the surviving peers completes (see
// internal/catchup). Session handles obtained before the restart fail with
// ErrStopped; acquire fresh ones via Node(i).Session.
func (c *Cluster) RestartNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.nodes[i]
	old.Stop()
	cfg := c.cfg
	cfg.Rejoin = true
	nd, err := NewNode(old.ID, cfg, c.faults)
	if err != nil {
		return err
	}
	c.nodes[i] = nd
	nd.Start()
	return nil
}

// CompletedTotal sums completed operations across all replicas.
func (c *Cluster) CompletedTotal() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t uint64
	for _, nd := range c.nodes {
		t += nd.CompletedTotal()
	}
	return t
}

// Close stops every node and the transport.
func (c *Cluster) Close() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Stop()
		}
	}
	c.faults.Close()
}
