package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"kite/internal/llc"
	"kite/internal/membership"
	"kite/internal/transport"
)

// Cluster is the in-process deployment helper: N nodes wired through a
// fault-injectable transport, as used by the tests, benchmarks and examples.
// Multi-process deployments build Nodes directly over a UDP transport
// (cmd/kite-node).
type Cluster struct {
	cfg    Config
	inner  *transport.InProc
	faults *transport.FaultInjector

	// mu guards nodes: RestartNode swaps a slot while harness goroutines
	// read others (never a hot path — protocol traffic does not touch it).
	mu    sync.RWMutex
	nodes []*Node
}

// NewCluster builds and starts an in-process deployment. Config.WALDir,
// when set, is the deployment's base directory: each replica logs under
// its own node-<id> subdirectory, and restarts of the same slot reuse it
// (which is the whole point — RestartNode recovers from it).
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	// Mailboxes exist for the whole id space, not just the boot members:
	// AddNode assigns fresh ids beyond the initial n.
	inner := transport.NewInProc(llc.MaxNodes, cfg.Workers, cfg.MailboxDepth)
	faults := transport.NewFaultInjector(inner, 1)
	c := &Cluster{cfg: cfg, inner: inner, faults: faults}
	for id := 0; id < cfg.Nodes; id++ {
		nd, err := NewNode(uint8(id), c.nodeConfig(uint8(id)), faults)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c, nil
}

// nodeConfig derives replica id's config from the cluster's: same
// everything, but its own WAL subdirectory.
func (c *Cluster) nodeConfig(id uint8) Config {
	cfg := c.cfg
	if cfg.WALDir != "" {
		cfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("node-%02d", id))
	}
	return cfg
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the number of replica slots ever created (boot members plus
// added replicas; removed replicas keep their slot, stopped). The live
// member set is Members().
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Members returns the group's current configuration — the newest installed
// view among live replicas.
func (c *Cluster) Members() membership.Config {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.membersLocked()
}

func (c *Cluster) membersLocked() membership.Config {
	var best membership.Config
	for _, nd := range c.nodes {
		if nd == nil || nd.Stopped() || nd.Removed() {
			continue
		}
		if v := nd.View(); best.Members == 0 || v.Epoch > best.Epoch {
			best = v
		}
	}
	return best
}

// proposerLocked picks a live member to drive a reconfiguration CAS,
// excluding id `not` (pass llc.MaxNodes to exclude nobody).
func (c *Cluster) proposerLocked(not uint8) *Node {
	members := c.membersLocked()
	for _, nd := range c.nodes {
		if nd == nil || nd.Stopped() || nd.Removed() || nd.ID == not {
			continue
		}
		if members.Contains(nd.ID) && !nd.CatchingUp() {
			return nd
		}
	}
	return nil
}

// AddNode grows the group by one replica: a fresh node with the next unused
// id. The successor configuration (epoch+1, members ∪ {id}) is committed
// first, through a live member — so every write from that moment on counts
// the joiner in its full-ack set and new quorums are majorities of the
// grown group — and only then is the replica booted, in catch-up mode: it
// applies (and acks) live writes immediately, buffers client requests, and
// serves nothing until its anti-entropy sweep over the new configuration's
// coverage set completes (the PR 4 rejoin gate; see DESIGN.md
// "Membership"). Returns the new replica's id; gate on AwaitCatchup (or the
// deployment layer's AwaitRejoin) before leasing its sessions.
func (c *Cluster) AddNode() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := uint8(len(c.nodes))
	if int(id) >= llc.MaxNodes {
		return -1, fmt.Errorf("core: no free node ids (max %d)", llc.MaxNodes)
	}
	prop := c.proposerLocked(llc.MaxNodes)
	if prop == nil {
		return -1, fmt.Errorf("core: no live member to drive the reconfiguration")
	}
	next, err := prop.ReconfigureAdd(id, 0)
	if err != nil {
		return -1, err
	}
	// Belt and braces: the commit broadcast installs the config at every
	// member that heard it; straight installs close the window for replicas
	// the broadcast missed (they would converge via the epoch check anyway).
	for _, nd := range c.nodes {
		if nd != nil && !nd.Stopped() {
			nd.InstallConfig(next)
		}
	}
	cfg := c.nodeConfig(id)
	cfg.Rejoin = true
	cfg.Initial = next
	nd, err := NewNode(id, cfg, c.faults)
	if err != nil {
		return -1, err
	}
	c.nodes = append(c.nodes, nd)
	nd.Start()
	return int(id), nil
}

// RemoveNode shrinks the group: the configuration excluding replica id is
// committed through a surviving member, every live replica installs it
// (their write ledgers refit, so nothing waits on the leaver's acks), and
// the leaver is crash-stopped. Its slot remains (ids are never reused);
// session handles on it fail with ErrStopped.
func (c *Cluster) RemoveNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("core: no node %d", id)
	}
	prop := c.proposerLocked(uint8(id))
	if prop == nil {
		return fmt.Errorf("core: no surviving member to drive the reconfiguration")
	}
	next, err := prop.ReconfigureRemove(uint8(id), 0)
	if err != nil {
		return err
	}
	for _, nd := range c.nodes {
		if nd != nil && !nd.Stopped() {
			nd.InstallConfig(next)
		}
	}
	c.nodes[id].Stop()
	return nil
}

// Node returns the i-th replica (the current incarnation, after restarts).
func (c *Cluster) Node(i int) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[i]
}

// Faults exposes the fault injector for failure studies: drop or delay
// links, partition nodes.
func (c *Cluster) Faults() *transport.FaultInjector { return c.faults }

// PauseNode makes replica i unresponsive for d (the sleeping-replica
// failure of §8.4).
func (c *Cluster) PauseNode(i int, d time.Duration) { c.Node(i).Pause(d) }

// StopNode crash-stops replica i: its workers exit, outstanding requests
// fail with ErrStopped, and — unlike a pause — its in-memory state is as
// good as gone, because only RestartNode brings the slot back.
func (c *Cluster) StopNode(i int) { c.Node(i).Stop() }

// CrashNode kills replica i the way SIGKILL would: workers exit, but a
// WAL-enabled replica's log is abandoned without a final fsync (see
// Node.Crash). Pair with RestartNode to exercise crash recovery; on
// memory-only deployments it is indistinguishable from StopNode.
func (c *Cluster) CrashNode(i int) { c.Node(i).Crash() }

// RestartNode replaces replica i with a fresh node of the same id on the
// same transport — the crash-recovery failure the sleeping-replica study
// cannot model. On a memory-only deployment the new incarnation is
// empty: it has lost every write it ever acknowledged. With a WAL
// (Config.WALDir) it first replays its own snapshot + log, restoring
// everything durable at the crash, including accepted-but-uncommitted
// Paxos rounds. Either way it boots in catch-up mode (Config.Rejoin):
// it buffers client requests and serves nothing until its anti-entropy
// sweep against the surviving peers completes (see internal/catchup) —
// with a WAL the sweep reconciles only the post-crash delta. Session
// handles obtained before the restart fail with ErrStopped; acquire
// fresh ones via Node(i).Session.
func (c *Cluster) RestartNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.nodes[i]
	old.Stop()
	cfg := c.nodeConfig(old.ID)
	cfg.Rejoin = true
	// A fresh incarnation: the new node's op ids must never collide with
	// ids the dead incarnation left in the group's exactly-once registries
	// (Config.Incarnation).
	cfg.Incarnation = old.Incarnation() + 1
	// Boot with the newest configuration any live replica has installed
	// (falling back to the dead node's own last view): the restarted
	// replica may have slept through reconfigurations, and the config key
	// swept in by catch-up — plus the epoch check's config exchange — heals
	// whatever staleness remains.
	cfg.Initial = c.membersLocked()
	if cfg.Initial.Members == 0 {
		cfg.Initial = old.View()
	}
	if !cfg.Initial.Contains(old.ID) {
		return fmt.Errorf("core: node %d is no longer a member (%v); rejoin it with AddNode", i, cfg.Initial)
	}
	nd, err := NewNode(old.ID, cfg, c.faults)
	if err != nil {
		return err
	}
	c.nodes[i] = nd
	nd.Start()
	return nil
}

// CompletedTotal sums completed operations across all replicas.
func (c *Cluster) CompletedTotal() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t uint64
	for _, nd := range c.nodes {
		t += nd.CompletedTotal()
	}
	return t
}

// Close stops every node and the transport.
func (c *Cluster) Close() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Stop()
		}
	}
	c.faults.Close()
}
