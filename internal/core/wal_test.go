package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/paxos"
	"kite/internal/proto"
	"kite/internal/wal"
)

func walConfig(t *testing.T, nodes int) Config {
	cfg := testConfig(nodes)
	cfg.WALDir = t.TempDir()
	return cfg
}

// storeDump reads (value, stamp) for a key range directly off a node's
// store — the strongest convergence check: not just the same answers,
// but the same LLC history behind them.
func storeDump(nd *Node, keys []uint64) map[uint64]string {
	out := make(map[uint64]string, len(keys))
	var buf [kvs.MaxValueLen]byte
	for _, k := range keys {
		val, st, _, ok := nd.Store.View(k, buf[:])
		if !ok {
			continue
		}
		out[k] = fmt.Sprintf("%q@%d.%d", val, st.Ver, st.MID)
	}
	return out
}

// TestWALRestartRecoversLocally: a crashed WAL replica restarts from its
// own disk. The rejoin sweep still runs (it may have missed writes), but
// the store contents — values, committed Paxos slots, the release flag —
// come back and are served locally.
func TestWALRestartRecoversLocally(t *testing.T) {
	c, err := NewCluster(walConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	const keys = 200
	for k := uint64(0); k < keys; k++ {
		write(t, prod, 1000+k, fmt.Sprintf("v%d", k))
	}
	for i := 0; i < 3; i++ {
		faa(t, prod, 500, 1)
	}
	release(t, prod, 600, "flag")
	flush(t, prod)

	c.CrashNode(2)
	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)

	nd2 := c.Node(2)
	s2 := nd2.Session(0)
	for k := uint64(0); k < keys; k++ {
		if got, want := read(t, s2, 1000+k), fmt.Sprintf("v%d", k); got != want {
			t.Fatalf("key %d = %q, want %q", 1000+k, got, want)
		}
	}
	if got := nd2.SlowPathStats().SlowReads; got != 0 {
		t.Fatalf("reads took %d quorum rounds; replay+sweep should have restored the store", got)
	}
	var buf [kvs.MaxValueLen]byte
	if snap := paxos.ReadCommitted(nd2.Store, 500, buf[:]); snap.Slot != 3 {
		t.Fatalf("paxos slot after recovery = %d, want 3", snap.Slot)
	}
	if got := acquire(t, s2, 600); got != "flag" {
		t.Fatalf("acquire after recovery = %q", got)
	}
	if got := nd2.Incarnation(); got < 1 {
		t.Fatalf("restarted incarnation = %d, want >= 1", got)
	}
}

// TestWALCrashAllRecovers is the double-failure scenario memory-only
// replication cannot survive: every replica crashes at once, so no peer
// holds the data. With per-node WALs each replica replays its own log,
// WAL-restored rejoiners answer each other's catch-up pulls, and every
// acknowledged write is readable afterwards.
func TestWALCrashAllRecovers(t *testing.T) {
	c, err := NewCluster(walConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	const keys = 150
	for k := uint64(0); k < keys; k++ {
		write(t, prod, 2000+k, fmt.Sprintf("w%d", k))
	}
	for i := 0; i < 5; i++ {
		faa(t, prod, 300, 1)
	}
	release(t, prod, 400, "sealed")
	flush(t, prod)

	for i := 0; i < 3; i++ {
		c.CrashNode(i)
	}
	// Restart all before awaiting any: during a whole-cluster recovery
	// every node is mid-rejoin, and the sweeps complete only because
	// WAL-restored nodes answer pulls anyway.
	for i := 0; i < 3; i++ {
		if err := c.RestartNode(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		awaitCatchup(t, c.Node(i), 20*time.Second)
	}

	for i := 0; i < 3; i++ {
		s := c.Node(i).Session(0)
		for k := uint64(0); k < keys; k++ {
			if got, want := read(t, s, 2000+k), fmt.Sprintf("w%d", k); got != want {
				t.Fatalf("node %d key %d = %q, want %q", i, 2000+k, got, want)
			}
		}
		if got := acquire(t, s, 400); got != "sealed" {
			t.Fatalf("node %d acquire = %q, want sealed", i, got)
		}
	}
	// The FAA counter survived as committed consensus state: the next
	// FAA continues from 5, not 0.
	if old := faa(t, c.Node(1).Session(1), 300, 1); old != 5 {
		t.Fatalf("FAA after crash-all saw %d, want 5 (committed rounds lost?)", old)
	}
}

// TestWALReplayConvergesWithSweep pins the satellite invariant: replay +
// rejoin sweep must land a restarted replica on exactly the store —
// values AND stamps — that the sweep alone produces from an empty disk,
// which in turn matches a replica that never crashed.
func TestWALReplayConvergesWithSweep(t *testing.T) {
	cfg := walConfig(t, 3)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	keys := make([]uint64, 0, 120)
	for k := uint64(0); k < 100; k++ {
		write(t, prod, 3000+k, fmt.Sprintf("x%d", k))
		keys = append(keys, 3000+k)
	}
	for i := 0; i < 4; i++ {
		faa(t, prod, 3500, 2)
	}
	keys = append(keys, 3500)
	release(t, prod, 3600, "fence")
	keys = append(keys, 3600)
	flush(t, prod) // quiesce: every write fully replicated

	want := storeDump(c.Node(0), keys)

	// Path 1: crash + WAL replay + sweep.
	c.CrashNode(2)
	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)
	if got := storeDump(c.Node(2), keys); !mapsEqual(got, want) {
		t.Fatalf("replay+sweep diverged from the live store:\n got %v\nwant %v", got, want)
	}

	// Path 2: wipe the WAL dir and restart — sweep alone from empty.
	c.StopNode(2)
	if err := os.RemoveAll(c.nodeConfig(2).WALDir); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)
	if got := storeDump(c.Node(2), keys); !mapsEqual(got, want) {
		t.Fatalf("sweep alone diverged from the live store:\n got %v\nwant %v", got, want)
	}
}

func mapsEqual(a, b map[uint64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestWALSnapshotBoundedRecovery: with an aggressive snapshot cadence
// the background loop folds the log during the workload; recovery then
// replays snapshot + tail and must still restore everything.
func TestWALSnapshotBoundedRecovery(t *testing.T) {
	cfg := walConfig(t, 3)
	cfg.SnapshotEvery = 100 // many snapshots across a 500-write workload
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	const keys = 500
	for k := uint64(0); k < keys; k++ {
		write(t, prod, 4000+k, fmt.Sprintf("s%d", k))
	}
	flush(t, prod)
	// Give the 100ms snapshot poll a chance to actually fold the log.
	time.Sleep(350 * time.Millisecond)

	for i := 0; i < 3; i++ {
		c.CrashNode(i)
	}
	for i := 0; i < 3; i++ {
		if err := c.RestartNode(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		awaitCatchup(t, c.Node(i), 20*time.Second)
	}
	s := c.Node(0).Session(0)
	for k := uint64(0); k < keys; k++ {
		if got, want := read(t, s, 4000+k), fmt.Sprintf("s%d", k); got != want {
			t.Fatalf("key %d = %q, want %q", 4000+k, got, want)
		}
	}
}

// TestWALRestoresAcceptedRound pins the exact state the WAL exists for:
// an accepted-but-uncommitted Paxos round and its standing promise. No
// peer can vouch for these (catch-up transfers committed state only);
// before the WAL their loss was the documented double-failure window.
func TestWALRestoresAcceptedRound(t *testing.T) {
	dir := t.TempDir()
	ballot := llc.Stamp{Ver: 7, MID: 1}

	store := kvs.New(1 << 10)
	lg, _, err := wal.Open(wal.Options{Dir: dir, FsyncInterval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	store.SetHook(func(ev kvs.Event) {
		r := wal.Record{Key: ev.Key, Slot: ev.Slot, Origin: ev.Origin, Stamp: ev.Stamp.Pack(), Value: ev.Value, Origins: ev.Origins}
		switch ev.Kind {
		case kvs.EvWrite:
			r.Kind = wal.KindWrite
		case kvs.EvPromise:
			r.Kind = wal.KindPromise
		case kvs.EvAccept:
			r.Kind = wal.KindAccept
		case kvs.EvCommit:
			r.Kind = wal.KindCommit
		case kvs.EvImport:
			r.Kind = wal.KindImport
		}
		lg.Append(r)
	})

	// Promise then accept at slot 0, as a remote proposer would drive it;
	// then SIGKILL the "node".
	var buf [kvs.MaxValueLen]byte
	prop := proto.Message{Kind: proto.KindPropose, Key: 42, Slot: 0, Stamp: ballot, From: 0}
	if rep := paxos.HandlePropose(store, &prop, 2, buf[:]); rep.Flags&proto.FlagNack != 0 {
		t.Fatalf("propose nacked: %+v", rep)
	}
	acc := proto.Message{Kind: proto.KindAccept, Key: 42, Slot: 0, Stamp: ballot, Value: []byte("pending"), Origin: 99, From: 0}
	if rep := paxos.HandleAccept(store, &acc, 2, buf[:]); rep.Flags&proto.FlagNack != 0 {
		t.Fatalf("accept nacked: %+v", rep)
	}
	lg.Crash()

	// Recovery: replay the log into a fresh store.
	store2 := kvs.New(1 << 10)
	var rc walReplayedConfig
	lg2, res, err := wal.Open(wal.Options{Dir: dir}, func(r *wal.Record) { replayRecord(store2, r, &rc) })
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if !res.Restored {
		t.Fatal("recovery saw an empty log")
	}

	var restored paxos.Persisted
	ok := false
	store2.Mutate(42, func(e *kvs.Entry) {
		restored, ok = paxos.ExportState(e.Meta())
	})
	if !ok {
		t.Fatal("no consensus state restored for key 42")
	}
	if restored.Slot != 0 || string(restored.AccVal) != "pending" || restored.AccOrigin != 99 {
		t.Fatalf("accepted round not restored: %+v", restored)
	}
	if restored.Promised.Less(ballot) || restored.AccBallot.Less(ballot) {
		t.Fatalf("promise/accepted ballot regressed: %+v (ballot %v)", restored, ballot)
	}
	// The restarted node must never allocate a ballot at or below one it
	// already granted — the watermark replayed with the records.
	if b := paxos.AllocBallot(store2, 42, 2, llc.Zero); !ballot.Less(b) {
		t.Fatalf("post-recovery ballot %v not above pre-crash ballot %v", b, ballot)
	}
}
