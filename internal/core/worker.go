package core

import (
	"time"

	"kite/internal/kvs"
	"kite/internal/proto"
	"kite/internal/transport"
)

// pendingOp is an in-flight protocol operation owned by a worker, keyed by
// op id in the worker's ops table. Replies are routed to onMessage; expired
// deadlines (retransmissions, the release barrier timeout) to onDeadline.
type pendingOp interface {
	onMessage(w *Worker, m *proto.Message)
	onDeadline(w *Worker, now time.Time)
	nextDeadline() time.Time
}

// Worker executes sessions and protocol handlers in a single-threaded event
// loop — the Kite worker thread of §6.1. All state it touches (sessions,
// ops, outboxes) is goroutine-local; shared node state (KVS, epoch,
// delinquency vector) is internally synchronised.
type Worker struct {
	node *Node
	id   uint8

	inbox <-chan []proto.Message
	reqCh chan *Request

	sessions []*Session
	ops      map[uint64]pendingOp

	// out stages outgoing messages per destination node; flush() sends
	// each stage as one batch (opportunistic batching, §6.3).
	out [][]proto.Message

	runq []*Session

	scratch [kvs.MaxValueLen]byte
	now     time.Time

	nextScan time.Time
	idle     *time.Timer
}

const (
	maxBatchesPerIter = 64
	maxAdmitsPerIter  = 128
	deadlineScanEvery = 200 * time.Microsecond
)

func newWorker(nd *Node, id uint8) *Worker {
	w := &Worker{
		node:  nd,
		id:    id,
		inbox: nd.tr.Recv(transport.Endpoint{Node: nd.ID, Worker: id}),
		reqCh: make(chan *Request, 1024),
		ops:   make(map[uint64]pendingOp, 256),
		out:   make([][]proto.Message, nd.cfg.Nodes),
	}
	return w
}

// nextOpID allocates a cluster-unique operation id for an op of session s:
// node(8) | session(24) | per-session sequence(32). The high 32 bits form
// the session tag the Paxos exactly-once filter keys on: a session has at
// most one outstanding RMW, so "the session's latest committed RMW id"
// decides whether a given RMW already committed.
func (w *Worker) nextOpID(s *Session) uint64 {
	s.opSeq++
	return uint64(w.node.ID)<<56 | uint64(s.idx)<<32 | uint64(uint32(s.opSeq))
}

func (w *Worker) register(id uint64, op pendingOp) { w.ops[id] = op }
func (w *Worker) unregister(id uint64)             { delete(w.ops, id) }

// stage queues m for dst's same-index worker; self-destined messages are
// not staged (use deliverLocal).
func (w *Worker) stage(dst uint8, m proto.Message) {
	w.out[dst] = append(w.out[dst], m)
}

// broadcastRemote stages m for every remote node.
func (w *Worker) broadcastRemote(m proto.Message) {
	for dst := uint8(0); int(dst) < w.node.n; dst++ {
		if dst != w.node.ID {
			w.stage(dst, m)
		}
	}
}

// broadcastAll stages m for every remote node and processes the local
// replica's copy inline (the loopback that lets the local store count
// towards quorums).
func (w *Worker) broadcastAll(m proto.Message) {
	w.broadcastRemote(m)
	w.deliverLocal(m)
}

// deliverLocal runs the replica-side handler for m against the local node
// and routes the reply (if any) straight back into this worker's ops.
func (w *Worker) deliverLocal(m proto.Message) {
	if rep, ok := w.handleRequest(&m); ok {
		w.dispatchReply(&rep)
	}
}

func (w *Worker) dispatchReply(m *proto.Message) {
	if op, ok := w.ops[m.OpID]; ok {
		op.onMessage(w, m)
	}
}

// dispatch processes one incoming message: replies feed pending ops,
// requests run replica handlers and stage their responses back.
func (w *Worker) dispatch(m *proto.Message) {
	if m.Kind == proto.KindCatchupPull {
		// Catch-up pulls answer with a whole chunk of messages, not the
		// single reply handleRequest models.
		w.handleCatchupPull(m)
		return
	}
	if m.IsReply() {
		w.dispatchReply(m)
		return
	}
	rep, ok := w.handleRequest(m)
	if !ok {
		return
	}
	if m.From == w.node.ID {
		w.dispatchReply(&rep)
		return
	}
	w.stage(m.From, rep)
}

// flush sends every staged batch. Batches are handed to the transport,
// which owns them afterwards.
func (w *Worker) flush() {
	for dst := range w.out {
		if len(w.out[dst]) == 0 {
			continue
		}
		batch := w.out[dst]
		w.out[dst] = nil
		w.node.tr.Send(transport.Endpoint{Node: uint8(dst), Worker: w.id}, batch)
	}
}

func (w *Worker) enqueueRun(s *Session) {
	if !s.inRunq {
		s.inRunq = true
		w.runq = append(w.runq, s)
	}
}

// run is the worker event loop.
func (w *Worker) run() {
	defer w.failAll()
	w.idle = time.NewTimer(w.node.cfg.IdlePoll)
	defer w.idle.Stop()
	if w.id == 0 && w.node.rejoining.Load() {
		// A restarted replica's first act is the anti-entropy sweep; worker
		// 0 owns it (it is node-wide state, but a pending op must live in
		// exactly one worker's event loop).
		w.now = time.Now()
		w.startCatchup()
		w.flush()
	}
	for {
		if w.node.stopped.Load() {
			return
		}
		if w.node.paused.Load() {
			// The sleeping replica of the failure study: no receiving,
			// no sending, no client progress.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		w.now = time.Now()
		progress := false

		// 1. Inbound protocol traffic.
	drain:
		for i := 0; i < maxBatchesPerIter; i++ {
			select {
			case batch := <-w.inbox:
				for j := range batch {
					w.dispatch(&batch[j])
				}
				progress = true
			default:
				break drain
			}
		}

		// 2. Newly submitted client requests.
	admit:
		for i := 0; i < maxAdmitsPerIter; i++ {
			select {
			case r := <-w.reqCh:
				r.sess.queue = append(r.sess.queue, r)
				w.enqueueRun(r.sess)
				progress = true
			default:
				break admit
			}
		}

		// 3. Pump runnable sessions (completions re-enqueue sessions, so
		// drain until quiescent). A rejoining node holds its client traffic
		// right here: admitted requests stay queued — buffered, not failed —
		// until the catch-up sweep completes, so no acquire (or relaxed
		// read of the still-stale store) is served early. The sessions stay
		// in the runq and drain on the first iteration after the sweep.
		if !w.node.rejoining.Load() {
			for len(w.runq) > 0 {
				s := w.runq[0]
				w.runq = w.runq[1:]
				s.inRunq = false
				w.pump(s)
				progress = true
			}
		}

		// 4. Deadlines: barrier timeouts and retransmissions.
		if w.now.After(w.nextScan) {
			w.scanDeadlines()
			w.nextScan = w.now.Add(deadlineScanEvery)
		}

		// 5. Ship staged batches.
		w.flush()

		if !progress {
			w.idleWait()
		}
	}
}

// idleWait blocks until traffic arrives or the poll interval elapses (so
// deadline scans still happen on a quiet node).
func (w *Worker) idleWait() {
	if !w.idle.Stop() {
		select {
		case <-w.idle.C:
		default:
		}
	}
	w.idle.Reset(w.node.cfg.IdlePoll)
	select {
	case batch := <-w.inbox:
		for j := range batch {
			w.dispatch(&batch[j])
		}
		w.flush()
	case r := <-w.reqCh:
		r.sess.queue = append(r.sess.queue, r)
		w.enqueueRun(r.sess)
	case <-w.idle.C:
	}
}

func (w *Worker) scanDeadlines() {
	for _, op := range w.ops {
		if d := op.nextDeadline(); !d.IsZero() && w.now.After(d) {
			op.onDeadline(w, w.now)
		}
	}
}

// pump advances a session: issue queued requests in order until one blocks
// (or flow control throttles relaxed writes).
func (w *Worker) pump(s *Session) {
	for s.head == nil && len(s.queue) > 0 {
		r := s.queue[0]
		if r.Canceled() {
			// Abandoned before it was issued: it never executes.
			s.queue = s.queue[1:]
			s.complete(r, ErrCanceled)
			continue
		}
		if r.Code == OpWrite && s.tracker.Len() >= w.node.cfg.MaxPendingWrites {
			s.throttled = true
			return
		}
		s.queue = s.queue[1:]
		w.issue(s, r)
	}
}

// failAll terminates outstanding and queued requests on shutdown.
func (w *Worker) failAll() {
	for _, s := range w.sessions {
		if s.head != nil {
			if rh, ok := s.head.(interface{ request() *Request }); ok {
				if r := rh.request(); r != nil {
					s.complete(r, ErrStopped)
				}
			}
			s.head = nil
		}
		for _, r := range s.queue {
			s.complete(r, ErrStopped)
		}
		s.queue = nil
	}
	// Drain any requests still sitting in the submit channel.
	w.drainSubmitted()
}

// drainSubmitted fails every request buffered in the submit channel with
// ErrStopped. Called by failAll on worker exit and by Session.Submit when
// it observes the node stopped right after sending (the submit/stop race);
// concurrent calls are safe — each request is received, and thus
// completed, exactly once.
func (w *Worker) drainSubmitted() {
	for {
		select {
		case r := <-w.reqCh:
			r.sess.complete(r, ErrStopped)
		default:
			return
		}
	}
}
