package core

import (
	"time"

	"kite/internal/es"
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/membership"
	"kite/internal/proto"
	"kite/internal/transport"
)

// pendingOp is an in-flight protocol operation owned by a worker, keyed by
// op id in the worker's ops table. Replies are routed to onMessage; expired
// deadlines (retransmissions, the release barrier timeout) to onDeadline.
type pendingOp interface {
	onMessage(w *Worker, m *proto.Message)
	onDeadline(w *Worker, now time.Time)
	nextDeadline() time.Time
}

// Worker executes sessions and protocol handlers in a single-threaded event
// loop — the Kite worker thread of §6.1. All state it touches (sessions,
// ops, outboxes) is goroutine-local; shared node state (KVS, epoch,
// delinquency vector) is internally synchronised.
type Worker struct {
	node *Node
	id   uint8

	inbox <-chan transport.Batch
	reqCh chan *Request

	sessions []*Session
	ops      map[uint64]pendingOp

	// out stages outgoing messages per destination node; flush() sends
	// each stage as one batch (opportunistic batching, §6.3).
	out [][]proto.Message

	// pendingVal accumulates (key, stamp) pairs of relaxed writes that
	// reached full acknowledgement this iteration. flush() folds them into
	// KindESValidate broadcasts — up to proto.MaxOrigins/2 pairs per frame
	// — so validation traffic rides the existing batches instead of paying
	// one frame per write (DESIGN.md "Local reads").
	pendingVal []uint64

	runq []*Session

	scratch [kvs.MaxValueLen]byte
	now     time.Time

	// cfgEpoch is the config epoch this worker last applied to its local
	// state (session trackers, a rejoin sweep in flight). The loop top
	// compares it against the node's installed epoch and runs applyConfig
	// on change.
	cfgEpoch uint32

	nextScan time.Time
	idle     *time.Timer
}

const (
	maxBatchesPerIter = 64
	maxAdmitsPerIter  = 128
	deadlineScanEvery = 200 * time.Microsecond
)

func newWorker(nd *Node, id uint8) *Worker {
	w := &Worker{
		node:  nd,
		id:    id,
		inbox: nd.tr.Recv(transport.Endpoint{Node: nd.ID, Worker: id}),
		reqCh: make(chan *Request, 1024),
		ops:   make(map[uint64]pendingOp, 256),
		// Staging is sized for the id space, not the current member count:
		// reconfiguration can add members with ids beyond the boot-time n.
		out:      make([][]proto.Message, llc.MaxNodes),
		cfgEpoch: nd.ConfigEpoch(),
	}
	return w
}

// nextOpID allocates a cluster-unique operation id for an op of session s:
// node(8) | incarnation(16) | session(8) | per-session sequence(32). The
// high 32 bits form the session tag the Paxos exactly-once filter keys on:
// a session has at most one outstanding RMW, so "the session's latest
// committed RMW id" decides whether a given RMW already committed. The
// incarnation makes the tag unique across crash-restarts of the node —
// a restarted replica's sequence counters start over at zero, but peers'
// registries (and its own, repopulated by the catch-up sweep's origin
// rings) still hold pre-crash op ids under the old tag; without the
// incarnation, a fresh session's seq eventually collides with one and the
// filter silently "completes" an RMW that never ran (Config.Incarnation).
func (w *Worker) nextOpID(s *Session) uint64 {
	s.opSeq++
	return uint64(w.node.ID)<<56 | uint64(uint16(w.node.cfg.Incarnation))<<40 |
		uint64(uint8(s.idx))<<32 | uint64(uint32(s.opSeq))
}

func (w *Worker) register(id uint64, op pendingOp) { w.ops[id] = op }
func (w *Worker) unregister(id uint64)             { delete(w.ops, id) }

// stage queues m for dst's same-index worker, stamping it with the
// configuration epoch installed NOW — not at flush — so a frame staged just
// before its own handling installs a successor config (the reconfiguration
// commit itself) still carries the epoch its receivers are in.
// Retransmissions re-stage and therefore re-stamp. Self-destined messages
// are not staged (use deliverLocal).
func (w *Worker) stage(dst uint8, m proto.Message) {
	m.Epoch = w.node.ConfigEpoch()
	w.out[dst] = append(w.out[dst], m)
}

// broadcastRemote stages m for every remote member of the installed
// configuration.
func (w *Worker) broadcastRemote(m proto.Message) {
	members := w.node.full()
	for dst := uint8(0); int(dst) < llc.MaxNodes; dst++ {
		if dst != w.node.ID && members&(1<<dst) != 0 {
			w.stage(dst, m)
		}
	}
}

// broadcastAll stages m for every remote node and processes the local
// replica's copy inline (the loopback that lets the local store count
// towards quorums).
func (w *Worker) broadcastAll(m proto.Message) {
	w.broadcastRemote(m)
	w.deliverLocal(m)
}

// sendResetBit sends a completed delinquent acquire's (or RMW's) reset-bit
// to exactly the replicas in mask — the ones whose counted replies flagged
// us. A broadcast would also reach replicas whose flag we never counted;
// there our bit may be in Trans for a newer release, and the reset would
// clear delinquency this op's epoch bump does not answer for (the bug the
// `local-reads` chaos schedule caught). Unreached replicas self-heal: their
// Trans bit still reads as suspected, so a later counted acquire is flagged
// and carries its own reset.
func (w *Worker) sendResetBit(opID uint64, mask uint16) {
	nd := w.node
	m := proto.Message{Kind: proto.KindResetBit, From: nd.ID, Worker: w.id, OpID: opID}
	mask &= nd.full()
	for dst := uint8(0); int(dst) < llc.MaxNodes; dst++ {
		if mask&(1<<dst) == 0 {
			continue
		}
		if dst == nd.ID {
			w.deliverLocal(m)
		} else {
			w.stage(dst, m)
		}
	}
}

// deliverLocal runs the replica-side handler for m against the local node
// and routes the reply (if any) straight back into this worker's ops.
func (w *Worker) deliverLocal(m proto.Message) {
	if rep, ok := w.handleRequest(&m); ok {
		w.dispatchReply(&rep)
	}
}

func (w *Worker) dispatchReply(m *proto.Message) {
	if op, ok := w.ops[m.OpID]; ok {
		op.onMessage(w, m)
	}
}

// dispatch processes one incoming message: replies feed pending ops,
// requests run replica handlers and stage their responses back. Before any
// of that, the frame's configuration epoch is checked (DESIGN.md
// "Membership"): a frame from another epoch — or from a node that is not a
// member of ours — must not feed a quorum, so it is dropped, and a config
// exchange is staged so whichever side is behind converges. The dropped
// frame is re-delivered by its protocol's own retransmission once the
// epochs agree.
func (w *Worker) dispatch(m *proto.Message) {
	nd := w.node
	if m.Kind == proto.KindConfigInfo || m.Kind == proto.KindConfigPull {
		// Exempt from the epoch check by design — these heal the mismatch.
		w.handleConfig(m)
		return
	}
	if e := nd.ConfigEpoch(); m.Epoch != e || !nd.view.Load().Contains(m.From) {
		nd.staleFrames.Add(1)
		switch {
		case m.Epoch > e:
			// The sender is ahead: ask it for the config it is running.
			w.stage(m.From, proto.Message{
				Kind: proto.KindConfigPull, From: nd.ID, Worker: w.id,
			})
		case m.Epoch < e:
			// The sender is behind (possibly removed and unaware): push our
			// config so it converges — or learns of its removal.
			w.stage(m.From, w.configInfoMsg())
		}
		return
	}
	if m.Kind == proto.KindCatchupPull {
		// Catch-up pulls answer with a whole chunk of messages, not the
		// single reply handleRequest models.
		w.handleCatchupPull(m)
		return
	}
	if m.IsReply() {
		w.dispatchReply(m)
		return
	}
	rep, ok := w.handleRequest(m)
	if !ok {
		return
	}
	if m.From == w.node.ID {
		w.dispatchReply(&rep)
		return
	}
	w.stage(m.From, rep)
}

// configInfoMsg builds the advertisement of this node's installed config.
func (w *Worker) configInfoMsg() proto.Message {
	v := w.node.View()
	return proto.Message{
		Kind: proto.KindConfigInfo, From: w.node.ID, Worker: w.id,
		Slot: uint64(v.Epoch), Bits: v.Members,
	}
}

// handleConfig processes the config-exchange kinds, which flow between
// nodes regardless of epoch agreement.
func (w *Worker) handleConfig(m *proto.Message) {
	switch m.Kind {
	case proto.KindConfigPull:
		w.stage(m.From, w.configInfoMsg())
	case proto.KindConfigInfo:
		// Reject what membership.Decode would: an empty member set can
		// only be a corrupted frame, and installing it would brick the
		// node (it would conclude it was removed). Epochs above uint32 are
		// likewise garbage — Slot is wire-shared with 64-bit fields.
		if m.Bits == 0 || m.Slot > uint64(^uint32(0)) {
			return
		}
		if uint64(w.node.ConfigEpoch()) < m.Slot {
			w.node.InstallConfig(membership.Config{Epoch: uint32(m.Slot), Members: m.Bits})
		}
	}
}

// queueValidate records that the relaxed write (key, st) has been acked by
// every current member; the pair is broadcast as a KindESValidate at the
// next flush. Validation is deliberately deferred to flush time — losing
// the batch (crash before flush) only costs fallbacks, never correctness.
func (w *Worker) queueValidate(key uint64, st llc.Stamp) {
	if w.node.n() == 1 {
		// Sole replica: nothing tracks, nothing validates — acquires are
		// served by the ABD loopback.
		return
	}
	w.pendingVal = es.AppendValidate(w.pendingVal, key, st)
}

// flushValidates folds the iteration's fully-acked writes into validate
// broadcasts: every current member (the local replica included, via the
// loopback) marks each still-current (key, stamp) locally readable.
func (w *Worker) flushValidates() {
	for len(w.pendingVal) > 0 {
		n := len(w.pendingVal)
		if n > proto.MaxOrigins {
			n = proto.MaxOrigins
		}
		m := proto.Message{
			Kind: proto.KindESValidate, From: w.node.ID, Worker: w.id,
			Origins: w.pendingVal[:n:n],
		}
		w.pendingVal = w.pendingVal[n:]
		w.broadcastAll(m)
	}
	w.pendingVal = nil
}

// flush sends every staged batch. The transport copies/encodes
// synchronously, so each stage is truncated and reused next iteration —
// steady state stages no allocations.
func (w *Worker) flush() {
	w.flushValidates()
	for dst := range w.out {
		if len(w.out[dst]) == 0 {
			continue
		}
		w.node.tr.Send(transport.Endpoint{Node: uint8(dst), Worker: w.id}, w.out[dst])
		w.out[dst] = w.out[dst][:0]
	}
}

func (w *Worker) enqueueRun(s *Session) {
	if !s.inRunq {
		s.inRunq = true
		w.runq = append(w.runq, s)
	}
}

// run is the worker event loop.
func (w *Worker) run() {
	defer w.failAll()
	w.idle = time.NewTimer(w.node.cfg.IdlePoll)
	defer w.idle.Stop()
	if w.id == 0 && w.node.rejoining.Load() {
		// A restarted replica's first act is the anti-entropy sweep; worker
		// 0 owns it (it is node-wide state, but a pending op must live in
		// exactly one worker's event loop).
		w.now = time.Now()
		w.startCatchup()
		w.flush()
	}
	for {
		if w.node.stopped.Load() {
			return
		}
		if w.node.removed.Load() {
			// An installed configuration excludes this node: the group has
			// moved on, writes no longer reach this store, local reads would
			// go stale. Shut down exactly like a crash-stop (failAll runs on
			// the deferred exit path); a sweep in flight is aborted so
			// AwaitCatchup waiters unblock (they must check Removed).
			w.node.finishCatchup()
			return
		}
		if w.node.paused.Load() {
			// The sleeping replica of the failure study: no receiving,
			// no sending, no client progress.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		w.now = time.Now()
		progress := false

		// 0. Configuration changes: retarget this worker's sessions (and a
		// rejoin sweep in flight) at the installed member set.
		if e := w.node.ConfigEpoch(); e != w.cfgEpoch {
			w.cfgEpoch = e
			w.applyConfig()
			progress = true
		}

		// 1. Inbound protocol traffic.
	drain:
		for i := 0; i < maxBatchesPerIter; i++ {
			select {
			case batch := <-w.inbox:
				for j := range batch.Msgs {
					w.dispatch(&batch.Msgs[j])
				}
				// Handlers copy anything they keep, so the batch's pooled
				// buffers go back to the transport here.
				batch.Release()
				progress = true
			default:
				break drain
			}
		}

		// 2. Newly submitted client requests.
	admit:
		for i := 0; i < maxAdmitsPerIter; i++ {
			select {
			case r := <-w.reqCh:
				r.sess.queue = append(r.sess.queue, r)
				w.enqueueRun(r.sess)
				progress = true
			default:
				break admit
			}
		}

		// 3. Pump runnable sessions (completions re-enqueue sessions, so
		// drain until quiescent). A rejoining node holds its client traffic
		// right here: admitted requests stay queued — buffered, not failed —
		// until the catch-up sweep completes, so no acquire (or relaxed
		// read of the still-stale store) is served early. The sessions stay
		// in the runq and drain on the first iteration after the sweep.
		if !w.node.rejoining.Load() {
			for len(w.runq) > 0 {
				s := w.runq[0]
				w.runq = w.runq[1:]
				s.inRunq = false
				w.pump(s)
				progress = true
			}
		}

		// 4. Deadlines: barrier timeouts and retransmissions.
		if w.now.After(w.nextScan) {
			w.scanDeadlines()
			w.nextScan = w.now.Add(deadlineScanEvery)
		}

		// 4b. Durability barrier: records this iteration's acks depend
		// on must be fsynced before step 5 ships them. A failed WAL
		// stops the node without flushing — staged acks for work that
		// never became durable are dropped with it.
		if !w.syncWAL() {
			return
		}

		// 5. Ship staged batches.
		w.flush()

		if !progress {
			w.idleWait()
		}
	}
}

// syncWAL is the pre-flush durability barrier: every record whose
// acknowledgment is about to ship must be durable first. In synchronous
// mode (Config.FsyncInterval < 0) that is every record this iteration
// appended; in group-commit mode it is the consensus-critical ones —
// Paxos promises and accepts no peer can vouch for, commits, the boot
// marker — while plain value installs ride the fsync deadline (the
// documented window). Either way the cost is at most one batched fsync
// per iteration, and zero syscalls when nothing qualifying was
// appended. Reports false when the WAL can no longer deliver
// durability: the node is crash-stopped (acknowledgment must imply
// durability — a dead replica is recoverable by the sweep, a silently
// memory-only one is a lie) and the caller must not flush.
func (w *Worker) syncWAL() bool {
	nd := w.node
	if nd.wal == nil {
		return true
	}
	err := nd.wal.Err()
	if err == nil {
		if nd.walSync {
			err = nd.wal.Sync()
		} else {
			err = nd.wal.SyncCritical()
		}
	}
	if err != nil {
		nd.walFailed(err)
		return false
	}
	return true
}

// idleWait blocks until traffic arrives or the poll interval elapses (so
// deadline scans still happen on a quiet node).
func (w *Worker) idleWait() {
	if !w.idle.Stop() {
		select {
		case <-w.idle.C:
		default:
		}
	}
	w.idle.Reset(w.node.cfg.IdlePoll)
	select {
	case batch := <-w.inbox:
		for j := range batch.Msgs {
			w.dispatch(&batch.Msgs[j])
		}
		batch.Release()
		// Same barrier as the loop's step 4b: these dispatches may have
		// granted promises/accepts whose acks are about to ship.
		if w.syncWAL() {
			w.flush()
		}
	case r := <-w.reqCh:
		r.sess.queue = append(r.sess.queue, r)
		w.enqueueRun(r.sess)
	case <-w.idle.C:
	}
}

func (w *Worker) scanDeadlines() {
	for _, op := range w.ops {
		if d := op.nextDeadline(); !d.IsZero() && w.now.After(d) {
			op.onDeadline(w, w.now)
		}
	}
}

// pump advances a session: issue queued requests in order until one blocks
// (or flow control throttles relaxed writes).
func (w *Worker) pump(s *Session) {
	for s.head == nil && len(s.queue) > 0 {
		r := s.queue[0]
		if r.Canceled() {
			// Abandoned before it was issued: it never executes.
			s.queue = s.queue[1:]
			s.complete(r, ErrCanceled)
			continue
		}
		if r.Code == OpWrite && s.tracker.Len() >= w.node.cfg.MaxPendingWrites {
			s.throttled = true
			return
		}
		s.queue = s.queue[1:]
		w.issue(s, r)
	}
}

// failAll terminates outstanding and queued requests on shutdown.
func (w *Worker) failAll() {
	for _, s := range w.sessions {
		if s.head != nil {
			if rh, ok := s.head.(interface{ request() *Request }); ok {
				if r := rh.request(); r != nil {
					s.complete(r, ErrStopped)
				}
			}
			s.head = nil
		}
		for _, r := range s.queue {
			s.complete(r, ErrStopped)
		}
		s.queue = nil
	}
	// Drain any requests still sitting in the submit channel.
	w.drainSubmitted()
}

// applyConfig retargets worker-local state at the installed configuration:
// every session's write ledger refits to the new member mask — writes whose
// only missing acks were from removed members complete here, which is what
// keeps releases and flushes from waiting forever on a replica that is gone
// — and a rejoin sweep in flight is rebuilt against the new member set (its
// chunks are idempotent, so restarting the walk is merely conservative).
func (w *Worker) applyConfig() {
	full := w.node.full()
	for _, s := range w.sessions {
		done := s.tracker.Refit(full)
		for _, id := range done {
			// A write completed by the refit has been acked by every CURRENT
			// member (a grown mask never completes early), so it validates
			// exactly like an ordinary full-ack.
			if esop, ok := w.ops[id].(*esWriteOp); ok {
				w.queueValidate(esop.msg.Key, esop.msg.Stamp)
			}
			w.unregister(id)
		}
		if len(done) == 0 {
			continue
		}
		if s.throttled {
			s.throttled = false
			w.enqueueRun(s)
		}
		if s.head != nil {
			s.head.onTrackerUpdate(w)
		}
	}
	// Ops that track quorums themselves (the Paxos proposers) re-resolve
	// against the new member set.
	for _, op := range w.ops {
		if ca, ok := op.(configAware); ok {
			ca.onConfigChange(w)
		}
	}
	if w.id == 0 && w.node.rejoining.Load() {
		if op, ok := w.ops[catchupOpID(w.node.ID)].(*catchupOp); ok {
			op.rebuild(w)
		}
	}
}

// configAware is implemented by pending ops that must re-resolve their
// quorum state when a configuration epoch installs.
type configAware interface{ onConfigChange(w *Worker) }

// drainSubmitted fails every request buffered in the submit channel with
// ErrStopped. Called by failAll on worker exit and by Session.Submit when
// it observes the node stopped right after sending (the submit/stop race);
// concurrent calls are safe — each request is received, and thus
// completed, exactly once.
func (w *Worker) drainSubmitted() {
	for {
		select {
		case r := <-w.reqCh:
			r.sess.complete(r, ErrStopped)
		default:
			return
		}
	}
}
