package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"kite/internal/paxos"
)

// awaitCatchup fails the test if node's sweep is still running after d.
func awaitCatchup(t testing.TB, nd *Node, d time.Duration) {
	t.Helper()
	if !nd.AwaitCatchup(d) {
		t.Fatalf("node %d still catching up after %v: %+v", nd.ID, d, nd.Catchup())
	}
}

// TestRestartCatchupRestoresState is the core rejoin scenario: a replica is
// crash-stopped and restarted empty; after its anti-entropy sweep its LOCAL
// store must hold every fully replicated write (served by fast-path reads,
// no quorum rounds) and the committed per-key Paxos state.
func TestRestartCatchupRestoresState(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	const keys = 300
	for k := uint64(0); k < keys; k++ {
		write(t, prod, 1000+k, fmt.Sprintf("v%d", k))
	}
	for i := 0; i < 3; i++ {
		faa(t, prod, 500, 1) // leaves committed Paxos state at slot 3
	}
	release(t, prod, 600, "flag")
	flush(t, prod) // every write is now at every replica

	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)

	nd2 := c.Node(2)
	st := nd2.Catchup()
	if st.Active || st.Pulled == 0 || st.Applied == 0 {
		t.Fatalf("catch-up stats look wrong: %+v", st)
	}

	// Every key must be served LOCALLY by the restarted replica: the sweep,
	// not the slow path, restored the store.
	s2 := nd2.Session(0)
	for k := uint64(0); k < keys; k++ {
		if got, want := read(t, s2, 1000+k), fmt.Sprintf("v%d", k); got != want {
			t.Fatalf("key %d = %q, want %q", 1000+k, got, want)
		}
	}
	if got := nd2.SlowPathStats().SlowReads; got != 0 {
		t.Fatalf("reads took %d quorum rounds; the sweep should have restored the store", got)
	}

	// Committed consensus state travelled: the key's slot resumed at 3, and
	// the next FAA sees the counter at 3.
	var buf [64]byte
	if snap := paxos.ReadCommitted(nd2.Store, 500, buf[:]); snap.Slot != 3 {
		t.Fatalf("paxos slot after rejoin = %d, want 3", snap.Slot)
	}
	if old := faa(t, s2, 500, 1); old != 3 {
		t.Fatalf("FAA after rejoin saw %d, want 3", old)
	}
	if got := acquire(t, s2, 600); got != "flag" {
		t.Fatalf("acquire after rejoin = %q", got)
	}
}

// TestRestartServesNothingUntilCaughtUp pins the serving gate: operations
// submitted to a rejoining replica — acquires above all — complete only
// after the sweep does. The catch-up is stretched with a 1-entry chunk size
// so the gate has a real window to fail in.
func TestRestartServesNothingUntilCaughtUp(t *testing.T) {
	cfg := testConfig(3)
	cfg.CatchupChunk = 1 // one pull round-trip per non-empty bucket
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	for k := uint64(0); k < 800; k++ {
		write(t, prod, k, "x")
	}
	write(t, prod, 900, "payload")
	release(t, prod, 901, "go")
	flush(t, prod)

	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	nd2 := c.Node(2)
	if !nd2.CatchingUp() {
		t.Fatal("restarted node not in catch-up mode")
	}

	// Submit an acquire and a relaxed read to the rejoining node. Their
	// completion callbacks record whether the sweep had finished — the gate
	// contract is "no operation completes while CatchingUp".
	s2 := nd2.Session(0)
	var early atomic.Int32
	results := make(chan *Request, 2)
	for _, r := range []*Request{
		{Code: OpAcquire, Key: 901},
		{Code: OpRead, Key: 900},
	} {
		r := r
		r.Done = func(r *Request) {
			if nd2.CatchingUp() {
				early.Add(1)
			}
			results <- r
		}
		s2.Submit(r)
	}
	got := map[OpCode]string{}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.Err != nil {
				t.Fatalf("%v failed: %v", r.Code, r.Err)
			}
			got[r.Code] = string(r.Out)
		case <-time.After(20 * time.Second):
			t.Fatal("ops against the rejoining node never completed")
		}
	}
	if n := early.Load(); n != 0 {
		t.Fatalf("%d operations served while the node was still catching up", n)
	}
	if got[OpAcquire] != "go" || got[OpRead] != "payload" {
		t.Fatalf("post-rejoin results: %v", got)
	}
	if nd2.CatchingUp() {
		t.Fatal("node still marked catching up after serving")
	}
}

// TestRestartWhileDelinquent covers a replica that dies, misses writes
// (published as a DM-set by the producer's slow release), and rejoins: the
// sweep must deliver the missed writes, and the producer's ES ledger must
// heal through the restart so a later flush fence completes.
func TestRestartWhileDelinquent(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	write(t, prod, 100, "v1")
	flush(t, prod)

	c.StopNode(2)
	write(t, prod, 100, "v2")
	release(t, prod, 101, "go") // times out on the dead replica, publishes DM-set
	if got := c.Node(0).SlowPathStats().SlowReleases; got == 0 {
		t.Fatal("release with a dead replica never published a DM-set")
	}

	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)

	// The rejoined replica serves the missed write from its swept store.
	s2 := c.Node(2).Session(0)
	if got := acquire(t, s2, 101); got != "go" {
		t.Fatalf("acquire after rejoin = %q", got)
	}
	if got := read(t, s2, 100); got != "v2" {
		t.Fatalf("read after rejoin = %q, want v2 (missed write not transferred)", got)
	}

	// The producer's settled writes kept retransmitting; the new incarnation
	// acked them, so the full-replication fence must complete — this is what
	// lets the cross-shard flush survive a replica restart.
	flush(t, prod)
	write(t, prod, 100, "v3")
	flush(t, prod)
	if got := read(t, s2, 100); got != "v3" {
		t.Fatalf("read after healed ledger = %q, want v3", got)
	}
}

// TestRestartCatchupSurvivesSlowPeer: the sweep requires coverage from
// BOTH peers of a 3-node deployment, so completing while one of them
// sleeps through the start proves pull retransmission rides out peer
// outages instead of wedging the rejoin.
func TestRestartCatchupSurvivesSlowPeer(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	write(t, prod, 100, "v")
	flush(t, prod)

	// One peer sleeps through the start of the sweep; the joiner needs BOTH
	// peers (coverage 2 of 2), so completion proves pull retransmission
	// rode out the outage.
	c.PauseNode(1, 300*time.Millisecond)
	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(2), 20*time.Second)
	if got := read(t, c.Node(2).Session(0), 100); got != "v" {
		t.Fatalf("read after rejoin = %q", got)
	}
}

// TestRestartOpIDsNeverCollide pins the incarnation tagging in the op-id
// layout (Config.Incarnation, Worker.nextOpID). A restarted node's sessions
// count their sequence numbers from zero again, while the group's per-key
// exactly-once registries — repopulated on every replica by the rejoin
// sweep's recent-origin rings — still hold the dead incarnation's op ids for
// the very same (node, session) pair. Without the incarnation bits in the
// session tag, the fresh session's op whose sequence number equals the stale
// registry entry is judged "already committed" and completes without
// executing: the FAA returns a zero old-value instead of the counter — a
// lost update. The chaos harness found exactly this shape (seed 42,
// rmw-lost-update on the FAA key); this is its deterministic distillation.
func TestRestartOpIDsNeverCollide(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed the registries: preFAAs ops from node 1, session 0, leave the
	// registry entry for that session tag at its highest sequence number.
	const preFAAs = 50
	s1 := c.Node(1).Session(0)
	for i := uint64(0); i < preFAAs; i++ {
		if old := faa(t, s1, 700, 1); old != i {
			t.Fatalf("pre-restart FAA #%d saw %d", i, old)
		}
	}

	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	awaitCatchup(t, c.Node(1), 20*time.Second)

	// The fresh incarnation's session restarts its sequence counter at zero
	// and walks it straight through the dead incarnation's range. Every
	// old-value must continue the counter monotonically; a collision with
	// the stale registry entry would return 0 mid-run.
	s1 = c.Node(1).Session(0)
	for i := uint64(0); i < preFAAs+20; i++ {
		if old := faa(t, s1, 700, 1); old != preFAAs+i {
			t.Fatalf("post-restart FAA #%d saw %d, want %d (op-id collision with the dead incarnation?)", i, old, preFAAs+i)
		}
	}
	if got := c.Node(1).Incarnation(); got != 1 {
		t.Fatalf("restarted node incarnation = %d, want 1", got)
	}
}
