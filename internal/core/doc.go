// Package core implements the Kite node: worker threads executing client
// sessions' requests by running Eventual Store, ABD and per-key Paxos,
// stitched together with the fast/slow path mechanism that enforces Release
// Consistency's barrier semantics (§4 of the paper).
//
// # Architecture (§6.1)
//
//   - A Node holds the whole KVS in memory plus the machine epoch-id and the
//     delinquency bit-vector shared by its workers.
//   - Worker goroutines own disjoint sets of sessions and run an event loop:
//     drain incoming protocol messages, admit new client requests, pump
//     session state machines, retransmit timed-out rounds, flush outgoing
//     batches (opportunistic batching: whatever is staged goes out, no
//     quota is awaited).
//   - Worker i of a node exchanges messages only with worker i of every
//     remote node, minimising connection state exactly like Kite's RDMA
//     layout (§6.3).
//   - A Session issues requests in session order (§2.1). Relaxed ops
//     complete locally (writes are tracked for the release barrier);
//     releases, acquires and RMWs block the session until their quorum
//     rounds finish.
//
// # Operation → protocol mapping (Table 1, §3)
//
//   - OpRead/OpWrite — Eventual Store (internal/es, §3.2): local reads,
//     asynchronous broadcast writes, all-replica ack tracking.
//   - OpRelease/OpAcquire — multi-writer ABD (internal/abd, §3.3) wrapped
//     in the §4.2 barrier machinery (release.go, acquire.go).
//   - OpFAA/OpCASWeak/OpCASStrong — per-key leaderless Paxos
//     (internal/paxos, §3.4; rmw.go).
//   - OpFlush — the write-replication fence of the sharding layer: the
//     release barrier without a write, insisting on full replication
//     (flush.go; DESIGN.md "Sharding").
//
// # Failure modes
//
// A paused node (Node.Pause) is the paper's sleeping replica (§8.4): it
// keeps its state and stops responding; the delinquency machinery repairs
// its staleness when it wakes. A RESTARTED node (Cluster.RestartNode,
// Config.Rejoin) is strictly worse — it lost every write it ever
// acknowledged — and is repaired by the anti-entropy catch-up sweep
// (catchup.go here, internal/catchup for the protocol): it buffers client
// requests, answers only write-application traffic, and serves nothing
// until the sweep restores its store, its committed Paxos state and its
// delinquency vector from a covering set of peers (DESIGN.md "Recovery").
//
// # Membership
//
// The member set the quorums of §3 are majorities OF is itself live
// state: each node holds an installed group configuration (epoch + member
// bitmask, internal/membership), from which n, the quorum size, the
// broadcast set and the full-ack mask derive at the moment an operation
// or retransmission needs them. Every outgoing frame is stamped with the
// installed epoch at stage time; dispatch drops frames from any other
// epoch (or from non-members) and exchanges configs instead, so a quorum
// is always assembled from replicas that agree what it is a majority of.
// Reconfiguration (reconfig.go) is a compare-and-swap on a reserved key
// through a hidden admin session — ordinary per-key Paxos, serialising
// racing changes — and a joining replica is handled as the limit case of
// a restarting one: commit first, then boot the joiner through the rejoin
// gate above (Cluster.AddNode/RemoveNode; DESIGN.md "Membership").
package core
