package core

import (
	"time"

	"kite/internal/abd"
	"kite/internal/proto"
)

// issueAcquire implements the acquire read (§4.2): an ABD read whose replies
// piggyback the you-are-delinquent notification. The session blocks until
// the acquire completes; if any replica of the quorum deems this machine
// delinquent, the machine epoch-id is incremented *before* the reset-bit
// broadcast and before the session resumes, so every relaxed access after
// the acquire sees the new epoch and refreshes its key via the slow path.
func (w *Worker) issueAcquire(s *Session, r *Request) {
	nd := w.node
	op := &acquireOp{
		id: w.nextOpID(s), sess: s, req: r,
		epochSnap: nd.Epoch.Load(),
		rd:        abd.NewReadOp(r.Key, 0, nd.n(), true),
		retryAt:   w.now.Add(nd.cfg.RetryInterval),
	}
	op.rd.OpID = op.id
	s.head = op
	w.register(op.id, op)
	w.broadcastAll(op.rd.ReadMsg(nd.ID, w.id, proto.KindAcqRead))
}

type acquireOp struct {
	id        uint64
	sess      *Session
	req       *Request
	rd        *abd.ReadOp
	epochSnap uint64
	retryAt   time.Time
}

func (op *acquireOp) request() *Request       { return op.req }
func (op *acquireOp) nextDeadline() time.Time { return op.retryAt }
func (op *acquireOp) onTrackerUpdate(*Worker) {}

func (op *acquireOp) onMessage(w *Worker, m *proto.Message) {
	var act abd.ReadAction
	switch m.Kind {
	case proto.KindReadReply:
		act = op.rd.OnReadReply(m)
	case proto.KindABDWriteAck:
		act = op.rd.OnWriteAck(m)
	default:
		return
	}
	switch act {
	case abd.ReadWriteBackNow:
		// The freshest value is not yet at a quorum: write it back before
		// returning it (linearizability of acquires; §3.3).
		w.broadcastAll(op.rd.WriteBackMsg(w.node.ID, w.id))
	case abd.ReadComplete:
		op.finish(w)
	}
}

// onConfigChange re-resolves the read (or write-back) round against a
// freshly installed member set (Worker.applyConfig).
func (op *acquireOp) onConfigChange(w *Worker) {
	switch op.rd.Refit(w.node.quorum(), w.node.full()) {
	case abd.ReadWriteBackNow:
		w.broadcastAll(op.rd.WriteBackMsg(w.node.ID, w.id))
	case abd.ReadComplete:
		op.finish(w)
	}
}

func (op *acquireOp) finish(w *Worker) {
	nd := w.node
	// Install the acquired value locally. The key's epoch advances only to
	// the machine epoch snapshotted at op start: if another session's
	// acquire bumped the epoch mid-flight, this key still looks stale to it
	// and will be re-fetched — the race §5.4's snapshot rule exists for.
	nd.Store.ApplyAndAdvance(op.req.Key, op.rd.MaxVal, op.rd.MaxTS, op.epochSnap)
	if op.rd.Delinquent {
		// Transition to the slow path: bump the machine epoch first, then
		// tell the replicas to reset our delinquency bit (Lemma 5.6 order).
		nd.Epoch.Bump()
		nd.epochBumps.Add(1)
		w.broadcastAll(proto.Message{
			Kind: proto.KindResetBit, From: nd.ID, Worker: w.id, OpID: op.id,
		})
	}
	op.req.setOut(op.rd.MaxVal)
	w.unregister(op.id)
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *acquireOp) onDeadline(w *Worker, now time.Time) {
	var m proto.Message
	switch op.rd.Phase {
	case abd.ReadRound:
		m = op.rd.ReadMsg(w.node.ID, w.id, proto.KindAcqRead)
	case abd.ReadWriteBack:
		m = op.rd.WriteBackMsg(w.node.ID, w.id)
	default:
		return
	}
	w.retransmit(m, op.rd.Unseen(w.node.full()))
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}
