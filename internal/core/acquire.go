package core

import (
	"time"

	"kite/internal/abd"
	"kite/internal/barrier"
	"kite/internal/proto"
)

// issueAcquire implements the acquire read (§4.2): an ABD read whose replies
// piggyback the you-are-delinquent notification. The session blocks until
// the acquire completes; if any replica of the quorum deems this machine
// delinquent, the machine epoch-id is incremented *before* the reset-bit
// broadcast and before the session resumes, so every relaxed access after
// the acquire sees the new epoch and refreshes its key via the slow path.
//
// Before paying the quorum round, the acquire tries the Hermes-style local
// fast path (DESIGN.md "Local reads"): if the key carries the valid bit —
// its value is a relaxed write every current member has acked — and is
// in-epoch, and this machine is not marked delinquent in its own barrier
// vector, the value is served from the local store with no messages at
// all. Safety leans on what validation refuses to cover: releases, ABD
// write-backs and RMW commits are never validated (their installs clear
// the bit, and only relaxed full-acks set it), so a local hit can never
// return a release's value — the RC synchronises-with edge, and the
// delinquency notification that rides the acquire's quorum replies, are
// only ever owed by acquires that fall back.
func (w *Worker) issueAcquire(s *Session, r *Request) {
	nd := w.node
	if !nd.cfg.DisableFastPath && !nd.cfg.DisableLocalAcquires &&
		nd.Delinq.State(nd.ID) == barrier.Clear {
		if val, _, ok := nd.Store.ViewValid(r.Key, nd.Epoch.Load(), w.scratch[:]); ok && len(val) > 0 {
			// len(val) > 0: a validated empty value is indistinguishable
			// from "key never written" to an observer, so serving it
			// locally would claim initial state after sync writes may have
			// completed elsewhere; the quorum read disambiguates.
			nd.localAcqHits.Add(1)
			r.setOut(val)
			s.complete(r, nil)
			return
		}
	}
	nd.acqFallbacks.Add(1)
	op := &acquireOp{
		id: w.nextOpID(s), sess: s, req: r,
		epochSnap: nd.Epoch.Load(),
		rd:        abd.NewReadOp(r.Key, 0, nd.n(), true),
		retryAt:   w.now.Add(nd.cfg.RetryInterval),
	}
	op.rd.OpID = op.id
	s.head = op
	w.register(op.id, op)
	w.broadcastAll(op.rd.ReadMsg(nd.ID, w.id, proto.KindAcqRead))
}

type acquireOp struct {
	id        uint64
	sess      *Session
	req       *Request
	rd        *abd.ReadOp
	epochSnap uint64
	retryAt   time.Time
}

func (op *acquireOp) request() *Request       { return op.req }
func (op *acquireOp) nextDeadline() time.Time { return op.retryAt }
func (op *acquireOp) onTrackerUpdate(*Worker) {}

func (op *acquireOp) onMessage(w *Worker, m *proto.Message) {
	var act abd.ReadAction
	switch m.Kind {
	case proto.KindReadReply:
		act = op.rd.OnReadReply(m)
	case proto.KindABDWriteAck:
		act = op.rd.OnWriteAck(m)
	default:
		return
	}
	switch act {
	case abd.ReadWriteBackNow:
		// The freshest value is not yet at a quorum: write it back before
		// returning it (linearizability of acquires; §3.3).
		w.broadcastAll(op.rd.WriteBackMsg(w.node.ID, w.id))
	case abd.ReadComplete:
		op.finish(w)
	}
}

// onConfigChange re-resolves the read (or write-back) round against a
// freshly installed member set (Worker.applyConfig).
func (op *acquireOp) onConfigChange(w *Worker) {
	switch op.rd.Refit(w.node.quorum(), w.node.full()) {
	case abd.ReadWriteBackNow:
		w.broadcastAll(op.rd.WriteBackMsg(w.node.ID, w.id))
	case abd.ReadComplete:
		op.finish(w)
	}
}

func (op *acquireOp) finish(w *Worker) {
	nd := w.node
	// Install the acquired value locally. The key's epoch advances only to
	// the machine epoch snapshotted at op start: if another session's
	// acquire bumped the epoch mid-flight, this key still looks stale to it
	// and will be re-fetched — the race §5.4's snapshot rule exists for.
	nd.Store.ApplyAndAdvance(op.req.Key, op.rd.MaxVal, op.rd.MaxTS, op.epochSnap)
	if op.rd.Delinquent {
		// Transition to the slow path: bump the machine epoch first, then
		// tell the replicas that flagged us to reset our delinquency bit
		// (Lemma 5.6 order; targeted send — see Worker.sendResetBit).
		nd.Epoch.Bump()
		nd.epochBumps.Add(1)
		w.sendResetBit(op.id, op.rd.DelinqMask)
	}
	op.req.setOut(op.rd.MaxVal)
	w.unregister(op.id)
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *acquireOp) onDeadline(w *Worker, now time.Time) {
	var m proto.Message
	switch op.rd.Phase {
	case abd.ReadRound:
		m = op.rd.ReadMsg(w.node.ID, w.id, proto.KindAcqRead)
	case abd.ReadWriteBack:
		m = op.rd.WriteBackMsg(w.node.ID, w.id)
	default:
		return
	}
	w.retransmit(m, op.rd.Unseen(w.node.full()))
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}
