package core

import (
	"time"

	"kite/internal/abd"
	"kite/internal/kvs"
	"kite/internal/proto"
)

// barrierState is the release-side barrier of §4.2, shared by releases and
// RMWs. It waits for every prior session write to be acked by all replicas;
// on timeout — provided every write reached a quorum — it publishes the
// DM-set via a slow-release broadcast and proceeds once a quorum has seen it.
type barrierState struct {
	done      bool
	timeoutAt time.Time
	slowSent  bool
	slowAcks  uint16
	dmSet     uint16
}

// barrierInit arms the barrier; returns immediately-done when the session's
// ledger is already clean.
func (b *barrierState) barrierInit(w *Worker, s *Session) {
	if s.tracker.AllAcked() {
		b.done = true
		return
	}
	b.timeoutAt = w.now.Add(w.node.cfg.ReleaseTimeout)
}

// barrierOnTracker reacts to an ack completing a write; reports whether the
// barrier just completed.
func (b *barrierState) barrierOnTracker(s *Session) bool {
	if b.done || b.slowSent || !s.tracker.AllAcked() {
		return false
	}
	b.done = true
	return true
}

// barrierOnTimeout runs the §4.2 slow-path release decision. Invariants
// enforced before the release may begin: (1) every prior write acked by at
// least a quorum, (2) the DM-set known to at least a quorum.
func (b *barrierState) barrierOnTimeout(w *Worker, s *Session, opID uint64, now time.Time) bool {
	if b.done || b.slowSent || now.Before(b.timeoutAt) {
		return false
	}
	switch {
	case s.tracker.AllAcked():
		b.done = true
		return true
	case s.tracker.QuorumAcked():
		b.dmSet = s.tracker.DMSet()
		b.slowSent = true
		w.node.slowRels.Add(1)
		w.broadcastAll(proto.Message{
			Kind: proto.KindSlowRelease, From: w.node.ID, Worker: w.id,
			OpID: opID, Bits: b.dmSet,
		})
	default:
		// Some write is still below a quorum; progress hinges on the
		// quorum-liveness assumption, so keep waiting (retransmissions of
		// the ES writes are already running).
		b.timeoutAt = now.Add(w.node.cfg.RetryInterval)
	}
	return false
}

// barrierOnSlowAck folds a slow-release ack; at quorum the tracked writes
// are settled (covered by the published DM-set) and the barrier completes.
// The writes' broadcasts keep retransmitting: settling satisfies THIS
// group's barrier, but OpFlush — the cross-shard fence — still waits for
// their full replication (es.Tracker.FullyAcked), since the published
// DM-set is invisible to consumers synchronising in other groups.
func (b *barrierState) barrierOnSlowAck(w *Worker, s *Session, m *proto.Message) bool {
	if !b.slowSent || b.done {
		return false
	}
	b.slowAcks |= 1 << m.From
	if popcount16(b.slowAcks) < w.node.quorum() {
		return false
	}
	s.tracker.Settle()
	b.done = true
	return true
}

// barrierOnConfigChange re-resolves a pending slow-release quorum against a
// freshly installed member set: removed members' acks stop counting, and a
// barrier blocked solely on a removed member's ack completes.
func (b *barrierState) barrierOnConfigChange(w *Worker, s *Session) bool {
	if !b.slowSent || b.done {
		return false
	}
	b.slowAcks &= w.node.full()
	if popcount16(b.slowAcks) < w.node.quorum() {
		return false
	}
	s.tracker.Settle()
	b.done = true
	return true
}

// --- Release -----------------------------------------------------------------

// issueRelease implements the release write: the barrier above plus an ABD
// write. Per the §4.3 overlap optimisation, the ABD write's first round (the
// benign LLC read) is broadcast immediately, concurrently with waiting for
// acks; the value round starts only once both the LLC quorum and the barrier
// are in.
func (w *Worker) issueRelease(s *Session, r *Request) {
	nd := w.node
	op := &releaseOp{
		id: w.nextOpID(s), sess: s, req: r,
		epochSnap: nd.Epoch.Load(),
		retryAt:   w.now.Add(nd.cfg.RetryInterval),
	}
	n := copy(op.valBuf[:], r.Val)
	op.wr = abd.NewWriteOp(r.Key, op.id, op.valBuf[:n], nd.n(), false)
	s.head = op
	w.register(op.id, op)
	w.broadcastAll(op.wr.ReadTSMsg(nd.ID, w.id, proto.KindReadTS))
	op.bar.barrierInit(w, s)
	op.maybeStartValue(w)
}

type releaseOp struct {
	id        uint64
	sess      *Session
	req       *Request
	wr        *abd.WriteOp
	bar       barrierState
	epochSnap uint64
	tsQuorum  bool
	started   bool // value round broadcast
	valBuf    [kvs.MaxValueLen]byte
	retryAt   time.Time
}

func (op *releaseOp) request() *Request       { return op.req }
func (op *releaseOp) nextDeadline() time.Time { return minTime(op.retryAt, op.bar.timeoutAt) }

func (op *releaseOp) onTrackerUpdate(w *Worker) {
	if op.bar.barrierOnTracker(op.sess) {
		op.maybeStartValue(w)
	}
}

// onConfigChange re-resolves the ABD rounds and the slow-release barrier
// against a freshly installed member set (Worker.applyConfig) — a round
// blocked solely on a removed member completes instead of retransmitting
// forever at a node whose frames the epoch check rejects.
func (op *releaseOp) onConfigChange(w *Worker) {
	v := w.node.View()
	if op.wr.Refit(v.Quorum(), v.Mask()) {
		if op.started {
			op.finish(w)
			return
		}
		op.tsQuorum = true
	}
	op.bar.barrierOnConfigChange(w, op.sess)
	op.maybeStartValue(w)
}

func (op *releaseOp) onMessage(w *Worker, m *proto.Message) {
	switch m.Kind {
	case proto.KindReadTSReply:
		if op.wr.OnReadTS(m) {
			op.tsQuorum = true
			op.maybeStartValue(w)
		}
	case proto.KindABDWriteAck:
		if op.started && op.wr.OnWriteAck(m) {
			op.finish(w)
		}
	case proto.KindSlowReleaseAck:
		if op.bar.barrierOnSlowAck(w, op.sess, m) {
			op.maybeStartValue(w)
		}
	}
}

// maybeStartValue begins the ABD value round once the LLC quorum and the
// barrier are both satisfied.
func (op *releaseOp) maybeStartValue(w *Worker) {
	if !op.tsQuorum || !op.bar.done || op.started {
		return
	}
	op.started = true
	nd := w.node
	st := nd.Store.WriteAtLeast(op.req.Key, op.wr.Val, op.wr.MaxTS, nd.ID, op.epochSnap)
	// broadcastAll: the loopback ack covers the local replica (the value is
	// already applied, so the handler acks without re-applying).
	w.broadcastAll(op.wr.ValueMsg(st, nd.ID, w.id))
}

func (op *releaseOp) finish(w *Worker) {
	w.unregister(op.id)
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *releaseOp) onDeadline(w *Worker, now time.Time) {
	if op.bar.barrierOnTimeout(w, op.sess, op.id, now) {
		op.maybeStartValue(w)
	}
	if now.After(op.retryAt) {
		if op.bar.slowSent && !op.bar.done {
			w.retransmit(proto.Message{
				Kind: proto.KindSlowRelease, From: w.node.ID, Worker: w.id,
				OpID: op.id, Bits: op.bar.dmSet,
			}, w.node.full()&^op.bar.slowAcks)
		}
		switch {
		case op.started:
			w.retransmit(op.wr.ValueMsg(op.wr.Stamp, w.node.ID, w.id), op.wr.Unseen(w.node.full()))
		case !op.tsQuorum:
			w.retransmit(op.wr.ReadTSMsg(w.node.ID, w.id, proto.KindReadTS), op.wr.Unseen(w.node.full()))
		}
		op.retryAt = now.Add(w.node.cfg.RetryInterval)
	}
}

func minTime(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() || a.Before(b) {
		return a
	}
	return b
}
