package core

import (
	"errors"
	"fmt"
	"time"

	"kite/internal/llc"
	"kite/internal/membership"
)

// Reconfiguration (DESIGN.md "Membership"): a membership change is a
// compare-and-swap on the reserved config key, run through the node's
// hidden admin session — ordinary per-key Paxos, so racing reconfigurations
// serialise and exactly one claims each successor epoch. The commit
// broadcast installs the new configuration at every member; stale peers and
// the targeted node converge through the epoch check's config exchange.

// ErrConfigConflict reports a reconfiguration CAS that lost to a concurrent
// one: the group's configuration changed underneath the proposal. The
// caller re-reads the membership (the losing node has already installed the
// winner's config) and retries if the change is still wanted.
var ErrConfigConflict = errors.New("kite: reconfiguration conflict: group configuration changed concurrently")

// DefaultReconfigTimeout bounds how long ReconfigureAdd/ReconfigureRemove
// wait for the configuration CAS to commit.
const DefaultReconfigTimeout = 15 * time.Second

// ReconfigureAdd commits a configuration that includes node id, returning
// the configuration now in force. The call is idempotent (adding a current
// member returns the installed config unchanged) and must run on a healthy
// member of the group. It does NOT boot the new replica — the deployment
// layer starts it afterwards, with Config.Initial set to the returned
// config and Config.Rejoin set, so the joiner serves nothing until its
// anti-entropy sweep against the new configuration's coverage set completes.
func (nd *Node) ReconfigureAdd(id uint8, timeout time.Duration) (membership.Config, error) {
	return nd.reconfigure(id, true, timeout)
}

// ReconfigureRemove commits a configuration that excludes node id,
// returning the configuration now in force. Idempotent; must run on a
// member that is NOT the one being removed. The removed replica shuts down
// when it learns the new configuration (and the deployment layer
// additionally crash-stops it); writes its missing acks were gating
// complete as soon as the survivors refit their ledgers.
func (nd *Node) ReconfigureRemove(id uint8, timeout time.Duration) (membership.Config, error) {
	return nd.reconfigure(id, false, timeout)
}

func (nd *Node) reconfigure(id uint8, add bool, timeout time.Duration) (membership.Config, error) {
	if int(id) >= llc.MaxNodes {
		return nd.View(), fmt.Errorf("core: node id %d outside [0,%d)", id, llc.MaxNodes)
	}
	if timeout <= 0 {
		timeout = DefaultReconfigTimeout
	}
	// One reconfiguration at a time through this node: the admin session is
	// a single logical thread of control like any other session.
	nd.adminMu.Lock()
	defer nd.adminMu.Unlock()

	cur := nd.View()
	if add == cur.Contains(id) {
		return cur, nil // already in the desired state
	}
	if !add && cur.N() == 1 {
		return cur, fmt.Errorf("core: cannot remove the last member of the group")
	}
	if !add && id == nd.ID {
		return cur, fmt.Errorf("core: a member cannot drive its own removal; run the removal on a surviving member")
	}
	next := cur.Add(id)
	if !add {
		next = cur.Remove(id)
	}
	// The config key starts absent (epoch 0 lives only in boot flags); from
	// the first committed reconfiguration on, the store holds the encoding
	// of the current config, which is the CAS comparand.
	var expected []byte
	if cur.Epoch > 0 {
		expected = cur.Encode()
	}
	r := &Request{
		Code: OpCASStrong, Key: membership.ConfigKey,
		Expected: expected, Val: next.Encode(),
	}
	done := make(chan struct{})
	r.Done = func(*Request) { close(done) }
	nd.admin.Submit(r)
	select {
	case <-done:
	case <-time.After(timeout):
		// The CAS stays in flight on the session; if it commits later the
		// commit broadcast still installs the config everywhere.
		return nd.View(), fmt.Errorf("core: reconfiguration (%v -> %v) timed out after %v", cur, next, timeout)
	}
	if r.Err != nil {
		return nd.View(), r.Err
	}
	if !r.Swapped {
		// Lost a race: adopt whatever won (the CAS result carries it) and
		// report the conflict — unless the winner already did our work.
		nd.maybeInstallEncoded(r.Out)
		if now := nd.View(); add == now.Contains(id) {
			return now, nil
		}
		return nd.View(), ErrConfigConflict
	}
	nd.InstallConfig(next)
	return next, nil
}
