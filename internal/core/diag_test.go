package core

import (
	"fmt"
	"sync"
	"testing"

	"kite/internal/llc"
	"kite/internal/paxos"
)

type commitRec struct {
	store  uintptr
	slot   uint64
	ballot llc.Stamp
	origin uint64
	val    uint64
}

// TestDiagCommitChain instruments every replica's commit applications and
// verifies the per-slot agreement and value-chain invariants directly.
func TestDiagCommitChain(t *testing.T) {
	var mu sync.Mutex
	var recs []commitRec
	paxos.DebugCommitHook = func(store uintptr, key, slot uint64, ballot llc.Stamp, origin uint64, val []byte) {
		if key != 99 {
			return
		}
		mu.Lock()
		recs = append(recs, commitRec{store, slot, ballot, origin, DecodeUint64(val)})
		mu.Unlock()
	}
	defer func() { paxos.DebugCommitHook = nil }()

	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perSession = 50
	var wg sync.WaitGroup
	sessions := []*Session{
		c.Node(0).Session(0), c.Node(1).Session(0), c.Node(2).Session(0),
		c.Node(0).Session(1), c.Node(1).Session(1),
	}
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				faa(t, s, 99, 1)
			}
		}(s)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// Invariant 1: per slot, all replicas commit the same (origin, value).
	type sv struct{ origin, val uint64 }
	bySlot := map[uint64]map[sv][]commitRec{}
	originSlots := map[uint64]map[uint64]bool{}
	for _, r := range recs {
		if bySlot[r.slot] == nil {
			bySlot[r.slot] = map[sv][]commitRec{}
		}
		bySlot[r.slot][sv{r.origin, r.val}] = append(bySlot[r.slot][sv{r.origin, r.val}], r)
		if originSlots[r.origin] == nil {
			originSlots[r.origin] = map[uint64]bool{}
		}
		originSlots[r.origin][r.slot] = true
	}
	for slot, m := range bySlot {
		if len(m) > 1 {
			msg := fmt.Sprintf("slot %d committed with %d distinct (origin,val):", slot, len(m))
			for k, v := range m {
				msg += fmt.Sprintf(" [origin=%x val=%d ballots=%v x%d]", k.origin, k.val, v[0].ballot, len(v))
			}
			t.Error(msg)
		}
	}
	// Invariant 2: an origin commits at exactly one slot.
	for origin, slots := range originSlots {
		if len(slots) > 1 {
			t.Errorf("origin %x committed at %d slots: %v", origin, len(slots), slots)
		}
	}
	// Invariant 3: the value chain increments by 1 per slot.
	maxSlot := uint64(0)
	for slot := range bySlot {
		if slot > maxSlot {
			maxSlot = slot
		}
	}
	for slot := uint64(0); slot <= maxSlot; slot++ {
		m := bySlot[slot]
		if len(m) != 1 {
			continue
		}
		for k := range m {
			if k.val != slot+1 {
				t.Errorf("slot %d committed val %d, want %d (stale base)", slot, k.val, slot+1)
			}
		}
	}
}
