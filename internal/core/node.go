package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/barrier"
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/membership"
	"kite/internal/transport"
	"kite/internal/wal"
)

// Node is one Kite replica: the full KVS in memory, the machine epoch-id,
// the delinquency bit-vector, and a set of worker goroutines executing
// client sessions.
type Node struct {
	ID  uint8
	cfg Config

	// view is the node's installed group configuration (epoch + member
	// set). Quorum sizes, broadcast targets and full-ack masks all derive
	// from it; InstallConfig advances it monotonically and the workers pick
	// the change up at their loop top (applyConfig).
	view atomic.Pointer[membership.Config]

	Store  *kvs.Store
	Epoch  barrier.Epoch
	Delinq barrier.Vector

	tr       transport.Transport
	workers  []*Worker
	sessions []*Session
	// admin is a hidden extra session (owned by worker 0, not leased to
	// clients or returned by Session) that reconfiguration CASes run on, so
	// AddNode/RemoveNode never violates the one-submitter-per-session
	// contract of the public sessions. adminMu serialises its submitters.
	admin   *Session
	adminMu sync.Mutex

	// wal, when non-nil, is the node's write-ahead log (Config.WALDir).
	// walRestored marks a boot that replayed prior state from it: such a
	// node still runs the rejoin sweep (it may have missed writes while
	// down) but, unlike an amnesiac rejoiner, its store is complete up to
	// its last durable record — so it may answer peers' catch-up pulls
	// even mid-rejoin, which is what lets a whole cluster restart from
	// disk without deadlocking on each other's sweeps. walSync selects
	// synchronous mode (Config.FsyncInterval < 0): each worker fsyncs ALL
	// of its iteration's appends before shipping acks, instead of just
	// the consensus-critical ones every mode fsyncs (Worker.syncWAL).
	// walErr holds the first WAL failure; setting it crash-stops the node
	// (walFailed).
	wal         *wal.Log
	walRestored bool
	walSync     bool
	walErr      atomic.Pointer[error]

	paused  atomic.Bool
	stopped atomic.Bool
	// stopCh is closed when the node stops; background loops (WAL
	// snapshots) select on it.
	stopCh chan struct{}
	// removed is set when an installed configuration excludes this node:
	// the group has moved on without it. Workers exit exactly as on a stop
	// (a removed replica's store stops receiving writes, so continuing to
	// serve local reads would hand out stale data).
	removed atomic.Bool
	started bool
	wg      sync.WaitGroup

	// Rejoin / anti-entropy state (DESIGN.md "Recovery"). rejoining is set
	// for the node's whole catch-up phase: client requests buffer, read-type
	// quorum traffic is dropped, and worker 0 drives the sweep. catchupDone
	// is closed (once) when the sweep completes; for nodes that never
	// rejoin it is closed at construction.
	rejoining      atomic.Bool
	catchupDone    chan struct{}
	catchupStarted time.Time
	catchupElapsed atomic.Int64 // ns; set when the sweep completes
	catchupPulled  atomic.Uint64
	catchupApplied atomic.Uint64

	// stats
	completed      [opCodes]atomic.Uint64
	slowReads      atomic.Uint64 // relaxed accesses served via the slow path
	slowWrites     atomic.Uint64
	epochBumps     atomic.Uint64
	slowRels       atomic.Uint64 // releases that published a DM-set
	staleFrames    atomic.Uint64 // frames dropped by the config-epoch check
	configInstalls atomic.Uint64 // configurations installed (boot excluded)
	localAcqHits   atomic.Uint64 // acquires served locally off a valid key
	acqFallbacks   atomic.Uint64 // acquires that fell back to the ABD read
}

// NewNode creates (but does not start) a replica. All nodes of a deployment
// must share cfg and use transports wired to the same endpoint space.
func NewNode(id uint8, cfg Config, tr transport.Transport) (*Node, error) {
	cfg = cfg.withDefaults()
	boot := cfg.Initial
	if boot.Members == 0 {
		if cfg.Nodes < 1 || cfg.Nodes > llc.MaxNodes {
			return nil, fmt.Errorf("core: %d nodes outside [1,%d]", cfg.Nodes, llc.MaxNodes)
		}
		boot = membership.Initial(cfg.Nodes)
	}
	if boot.N() > llc.MaxNodes {
		return nil, fmt.Errorf("core: %d members exceed %d", boot.N(), llc.MaxNodes)
	}
	// The op-id layout (node 8 | incarnation 16 | session 8 | seq 32, see
	// Worker.nextOpID) bounds both the session count and the incarnation.
	if cfg.Workers*cfg.SessionsPerWorker+1 > 256 {
		return nil, fmt.Errorf("core: %d sessions exceed the 255 the op-id layout addresses",
			cfg.Workers*cfg.SessionsPerWorker)
	}
	if cfg.Incarnation >= 0xffff {
		return nil, fmt.Errorf("core: incarnation %d outside [0,65535)", cfg.Incarnation)
	}
	nd := &Node{
		ID:    id,
		cfg:   cfg,
		Store: kvs.New(cfg.KVSCapacity),
		tr:    tr,
	}
	nd.stopCh = make(chan struct{})
	// WAL replay happens before the membership check: it may both raise
	// the incarnation above the requested one and adopt a newer group
	// configuration the node had durably installed — including one that
	// removed this node while it was down, which must fail the boot.
	if cfg.WALDir != "" {
		if err := nd.openWAL(&boot); err != nil {
			return nil, err
		}
	}
	if !boot.Contains(id) {
		if nd.wal != nil {
			nd.wal.Close()
		}
		return nil, fmt.Errorf("core: node id %d not in boot config (%v)", id, boot)
	}
	nd.view.Store(&boot)
	nd.catchupDone = make(chan struct{})
	// A WAL-restored node always rejoins (its log is complete only up to
	// the crash; the sweep reconciles the delta) even if the caller
	// forgot to ask.
	if (cfg.Rejoin || nd.walRestored) && boot.N() > 1 {
		nd.rejoining.Store(true)
		nd.catchupStarted = time.Now()
	} else {
		close(nd.catchupDone)
	}
	nd.workers = make([]*Worker, cfg.Workers)
	for w := range nd.workers {
		nd.workers[w] = newWorker(nd, uint8(w))
	}
	nd.sessions = make([]*Session, 0, cfg.Workers*cfg.SessionsPerWorker)
	for i := 0; i < cfg.Workers*cfg.SessionsPerWorker; i++ {
		w := nd.workers[i%cfg.Workers]
		s := newSession(nd, w, i)
		w.sessions = append(w.sessions, s)
		nd.sessions = append(nd.sessions, s)
	}
	// The admin session rides on worker 0 with the next free index; it is
	// invisible to Sessions()/Session(i) and exists only for
	// reconfiguration CASes.
	nd.admin = newSession(nd, nd.workers[0], len(nd.sessions))
	nd.workers[0].sessions = append(nd.workers[0].sessions, nd.admin)
	// The mutation hook goes in only after replay: replayed records must
	// not re-log themselves.
	if nd.wal != nil {
		nd.Store.SetHook(nd.walHook)
	}
	return nd, nil
}

// View returns the node's installed group configuration.
func (nd *Node) View() membership.Config { return *nd.view.Load() }

// Incarnation returns the boot incarnation this node was created with
// (Config.Incarnation); the next incarnation of the same id must boot with
// a strictly higher value.
func (nd *Node) Incarnation() uint32 { return nd.cfg.Incarnation }

// WALRestored reports whether this boot replayed prior state from its
// write-ahead log. Such a node rejoins on its own (sweeping only the
// delta it missed while down), even without Config.Rejoin.
func (nd *Node) WALRestored() bool { return nd.walRestored }

// ConfigEpoch returns the installed configuration epoch (the value stamped
// on every outgoing frame).
func (nd *Node) ConfigEpoch() uint32 { return nd.view.Load().Epoch }

// MembersMask returns the installed member bitmask.
func (nd *Node) MembersMask() uint16 { return nd.view.Load().Members }

// n, quorum and full derive from the installed configuration.
func (nd *Node) n() int        { return nd.view.Load().N() }
func (nd *Node) quorum() int   { return nd.view.Load().Quorum() }
func (nd *Node) full() uint16  { return nd.view.Load().Members }
func (nd *Node) Removed() bool { return nd.removed.Load() }

// InstallConfig adopts c if it is newer than the installed configuration,
// reporting whether it was installed. Installs are monotone in the epoch
// and safe from any goroutine; workers observe the change at their next
// loop iteration (retargeting trackers, broadcast sets and quorum sizes —
// see Worker.applyConfig). Installing a configuration that excludes this
// node marks it removed: its workers shut down like a crash-stop, since a
// non-member's store no longer receives the group's writes and must not
// serve reads from it.
func (nd *Node) InstallConfig(c membership.Config) bool {
	for {
		cur := nd.view.Load()
		if c.Epoch <= cur.Epoch {
			return false
		}
		cc := c
		if nd.view.CompareAndSwap(cur, &cc) {
			break
		}
	}
	nd.configInstalls.Add(1)
	// Installed configurations are durable: a restarted node must come
	// back under the newest view it ever acknowledged, or it could serve
	// quorums computed from a member set the group has moved past.
	if nd.wal != nil {
		nd.wal.Append(wal.Record{Kind: wal.KindConfig, Epoch: c.Epoch, Value: c.Encode()})
	}
	if !c.Contains(nd.ID) {
		nd.removed.Store(true)
	}
	return true
}

// maybeInstallEncoded installs a configuration observed as the committed
// value of the config key (Paxos commit/learn traffic, catch-up items).
// Malformed values are ignored — Decode validates.
func (nd *Node) maybeInstallEncoded(val []byte) {
	if c, err := membership.Decode(val); err == nil {
		nd.InstallConfig(c)
	}
}

// installConfigFromStore installs whatever configuration the local store
// holds under the config key — how a swept-in config takes effect when a
// (re)joining replica finishes catch-up.
func (nd *Node) installConfigFromStore() {
	var buf [kvs.MaxValueLen]byte
	if val, _, _, ok := nd.Store.View(membership.ConfigKey, buf[:]); ok {
		nd.maybeInstallEncoded(val)
	}
}

// Start launches the worker goroutines.
func (nd *Node) Start() {
	if nd.started {
		return
	}
	nd.started = true
	for _, w := range nd.workers {
		nd.wg.Add(1)
		go func(w *Worker) {
			defer nd.wg.Done()
			w.run()
		}(w)
	}
	if nd.wal != nil && nd.cfg.SnapshotEvery >= 0 {
		nd.wg.Add(1)
		go func() {
			defer nd.wg.Done()
			nd.snapshotLoop()
		}()
	}
}

// Stop terminates the workers, failing outstanding requests with
// ErrStopped, and waits for them to exit. Stopping a node mid-rejoin
// aborts its catch-up sweep: CatchingUp drops to false and AwaitCatchup
// unblocks, so waiters on a node that died sweeping (a repeated SIGHUP,
// a test teardown) do not hang for their full timeout — check Stopped to
// distinguish an aborted sweep from a completed one.
func (nd *Node) Stop() {
	if nd.stopped.Swap(true) {
		return
	}
	close(nd.stopCh)
	nd.wg.Wait()
	nd.finishCatchup()
	if nd.wal != nil {
		nd.wal.Close()
	}
}

// Crash stops the node the way SIGKILL would: workers exit as on Stop
// (in-process we cannot kill goroutines preemptively), but the WAL is
// abandoned mid-flush — buffered records reach the file, since a killed
// process's page cache survives, yet nothing is fsynced. Restarting
// from the same WALDir then exercises the real recovery path: replay up
// to the last durable record plus the rejoin sweep for the rest.
// Memory-only nodes crash exactly like Stop.
func (nd *Node) Crash() {
	if nd.stopped.Swap(true) {
		return
	}
	close(nd.stopCh)
	nd.wg.Wait()
	nd.finishCatchup()
	if nd.wal != nil {
		nd.wal.Crash()
	}
}

// Stopped reports whether the node has been stopped.
func (nd *Node) Stopped() bool { return nd.stopped.Load() }

// Pause makes the node unresponsive for d — workers stop processing
// messages and requests, exactly like the sleeping replica of the failure
// study (§8.4). Messages queued for it overflow and drop; its peers' releases
// time out, publish it in DM-sets and move on.
func (nd *Node) Pause(d time.Duration) {
	if nd.paused.Swap(true) {
		return
	}
	time.AfterFunc(d, func() { nd.paused.Store(false) })
}

// Paused reports whether the node is currently unresponsive.
func (nd *Node) Paused() bool { return nd.paused.Load() }

// CatchingUp reports whether the node is still running its rejoin sweep.
// A catching-up node buffers client requests and serves no acquires (or any
// other operation) until the sweep completes.
func (nd *Node) CatchingUp() bool { return nd.rejoining.Load() }

// AwaitCatchup blocks until the node's rejoin sweep completes, reporting
// whether it did so within d. Nodes that never rejoined return true
// immediately.
func (nd *Node) AwaitCatchup(d time.Duration) bool {
	select {
	case <-nd.catchupDone:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-nd.catchupDone:
		return true
	case <-t.C:
		return false
	}
}

// CatchupStats is a snapshot of a node's rejoin sweep.
type CatchupStats struct {
	Active  bool          // the sweep is still running
	Pulled  uint64        // items received from peers
	Applied uint64        // items newer than local state (actually installed)
	Elapsed time.Duration // sweep duration (so far when Active)
}

// Catchup snapshots the node's rejoin-sweep progress. Nodes that booted
// normally report the zero value.
func (nd *Node) Catchup() CatchupStats {
	st := CatchupStats{
		Active:  nd.rejoining.Load(),
		Pulled:  nd.catchupPulled.Load(),
		Applied: nd.catchupApplied.Load(),
		Elapsed: time.Duration(nd.catchupElapsed.Load()),
	}
	if st.Active {
		st.Elapsed = time.Since(nd.catchupStarted)
	}
	return st
}

// finishCatchup transitions the node out of rejoin mode, exactly once. A
// completed sweep may have pulled a newer group configuration in with the
// rest of the key space; it takes effect here, before the node serves.
func (nd *Node) finishCatchup() {
	if nd.rejoining.Swap(false) {
		nd.installConfigFromStore()
		nd.catchupElapsed.Store(int64(time.Since(nd.catchupStarted)))
		close(nd.catchupDone)
	}
}

// Sessions returns the number of client sessions the node runs.
func (nd *Node) Sessions() int { return len(nd.sessions) }

// Session returns the i-th session handle.
func (nd *Node) Session(i int) *Session { return nd.sessions[i] }

// Config returns the node's effective configuration.
func (nd *Node) Config() Config { return nd.cfg }

// Completed returns how many operations of the given class this node's
// sessions have completed.
func (nd *Node) Completed(c OpCode) uint64 { return nd.completed[c].Load() }

// CompletedTotal sums completions across operation classes.
func (nd *Node) CompletedTotal() uint64 {
	var t uint64
	for i := range nd.completed {
		t += nd.completed[i].Load()
	}
	return t
}

// Stats is a snapshot of a node's slow-path activity.
type Stats struct {
	SlowReads    uint64 // relaxed reads served by quorum rounds
	SlowWrites   uint64 // relaxed writes that needed a TS quorum round
	EpochBumps   uint64 // acquire-side transitions to the slow path
	SlowReleases uint64 // releases that published a DM-set
	LocalAcqHits uint64 // acquires served locally off a validated key (DESIGN.md "Local reads")
	AcqFallbacks uint64 // acquires that fell back to the ABD quorum read
}

// SlowPathStats snapshots the node's slow-path counters.
func (nd *Node) SlowPathStats() Stats {
	return Stats{
		SlowReads:    nd.slowReads.Load(),
		SlowWrites:   nd.slowWrites.Load(),
		EpochBumps:   nd.epochBumps.Load(),
		SlowReleases: nd.slowRels.Load(),
		LocalAcqHits: nd.localAcqHits.Load(),
		AcqFallbacks: nd.acqFallbacks.Load(),
	}
}
