package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/barrier"
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/transport"
)

// Node is one Kite replica: the full KVS in memory, the machine epoch-id,
// the delinquency bit-vector, and a set of worker goroutines executing
// client sessions.
type Node struct {
	ID     uint8
	cfg    Config
	n      int
	quorum int
	full   uint16 // all-nodes bitmask

	Store  *kvs.Store
	Epoch  barrier.Epoch
	Delinq barrier.Vector

	tr       transport.Transport
	workers  []*Worker
	sessions []*Session

	paused  atomic.Bool
	stopped atomic.Bool
	started bool
	wg      sync.WaitGroup

	// Rejoin / anti-entropy state (DESIGN.md "Recovery"). rejoining is set
	// for the node's whole catch-up phase: client requests buffer, read-type
	// quorum traffic is dropped, and worker 0 drives the sweep. catchupDone
	// is closed (once) when the sweep completes; for nodes that never
	// rejoin it is closed at construction.
	rejoining      atomic.Bool
	catchupDone    chan struct{}
	catchupStarted time.Time
	catchupElapsed atomic.Int64 // ns; set when the sweep completes
	catchupPulled  atomic.Uint64
	catchupApplied atomic.Uint64

	// stats
	completed  [opCodes]atomic.Uint64
	slowReads  atomic.Uint64 // relaxed accesses served via the slow path
	slowWrites atomic.Uint64
	epochBumps atomic.Uint64
	slowRels   atomic.Uint64 // releases that published a DM-set
}

// NewNode creates (but does not start) a replica. All nodes of a deployment
// must share cfg and use transports wired to the same endpoint space.
func NewNode(id uint8, cfg Config, tr transport.Transport) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 || cfg.Nodes > llc.MaxNodes {
		return nil, fmt.Errorf("core: %d nodes outside [1,%d]", cfg.Nodes, llc.MaxNodes)
	}
	if int(id) >= cfg.Nodes {
		return nil, fmt.Errorf("core: node id %d with %d nodes", id, cfg.Nodes)
	}
	nd := &Node{
		ID:     id,
		cfg:    cfg,
		n:      cfg.Nodes,
		quorum: cfg.Nodes/2 + 1,
		full:   uint16(1<<cfg.Nodes) - 1,
		Store:  kvs.New(cfg.KVSCapacity),
		tr:     tr,
	}
	nd.catchupDone = make(chan struct{})
	if cfg.Rejoin && cfg.Nodes > 1 {
		nd.rejoining.Store(true)
		nd.catchupStarted = time.Now()
	} else {
		close(nd.catchupDone)
	}
	nd.workers = make([]*Worker, cfg.Workers)
	for w := range nd.workers {
		nd.workers[w] = newWorker(nd, uint8(w))
	}
	nd.sessions = make([]*Session, 0, cfg.Workers*cfg.SessionsPerWorker)
	for i := 0; i < cfg.Workers*cfg.SessionsPerWorker; i++ {
		w := nd.workers[i%cfg.Workers]
		s := newSession(nd, w, i)
		w.sessions = append(w.sessions, s)
		nd.sessions = append(nd.sessions, s)
	}
	return nd, nil
}

// Start launches the worker goroutines.
func (nd *Node) Start() {
	if nd.started {
		return
	}
	nd.started = true
	for _, w := range nd.workers {
		nd.wg.Add(1)
		go func(w *Worker) {
			defer nd.wg.Done()
			w.run()
		}(w)
	}
}

// Stop terminates the workers, failing outstanding requests with
// ErrStopped, and waits for them to exit. Stopping a node mid-rejoin
// aborts its catch-up sweep: CatchingUp drops to false and AwaitCatchup
// unblocks, so waiters on a node that died sweeping (a repeated SIGHUP,
// a test teardown) do not hang for their full timeout — check Stopped to
// distinguish an aborted sweep from a completed one.
func (nd *Node) Stop() {
	if nd.stopped.Swap(true) {
		return
	}
	nd.wg.Wait()
	nd.finishCatchup()
}

// Stopped reports whether the node has been stopped.
func (nd *Node) Stopped() bool { return nd.stopped.Load() }

// Pause makes the node unresponsive for d — workers stop processing
// messages and requests, exactly like the sleeping replica of the failure
// study (§8.4). Messages queued for it overflow and drop; its peers' releases
// time out, publish it in DM-sets and move on.
func (nd *Node) Pause(d time.Duration) {
	if nd.paused.Swap(true) {
		return
	}
	time.AfterFunc(d, func() { nd.paused.Store(false) })
}

// Paused reports whether the node is currently unresponsive.
func (nd *Node) Paused() bool { return nd.paused.Load() }

// CatchingUp reports whether the node is still running its rejoin sweep.
// A catching-up node buffers client requests and serves no acquires (or any
// other operation) until the sweep completes.
func (nd *Node) CatchingUp() bool { return nd.rejoining.Load() }

// AwaitCatchup blocks until the node's rejoin sweep completes, reporting
// whether it did so within d. Nodes that never rejoined return true
// immediately.
func (nd *Node) AwaitCatchup(d time.Duration) bool {
	select {
	case <-nd.catchupDone:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-nd.catchupDone:
		return true
	case <-t.C:
		return false
	}
}

// CatchupStats is a snapshot of a node's rejoin sweep.
type CatchupStats struct {
	Active  bool          // the sweep is still running
	Pulled  uint64        // items received from peers
	Applied uint64        // items newer than local state (actually installed)
	Elapsed time.Duration // sweep duration (so far when Active)
}

// Catchup snapshots the node's rejoin-sweep progress. Nodes that booted
// normally report the zero value.
func (nd *Node) Catchup() CatchupStats {
	st := CatchupStats{
		Active:  nd.rejoining.Load(),
		Pulled:  nd.catchupPulled.Load(),
		Applied: nd.catchupApplied.Load(),
		Elapsed: time.Duration(nd.catchupElapsed.Load()),
	}
	if st.Active {
		st.Elapsed = time.Since(nd.catchupStarted)
	}
	return st
}

// finishCatchup transitions the node out of rejoin mode, exactly once.
func (nd *Node) finishCatchup() {
	if nd.rejoining.Swap(false) {
		nd.catchupElapsed.Store(int64(time.Since(nd.catchupStarted)))
		close(nd.catchupDone)
	}
}

// Sessions returns the number of client sessions the node runs.
func (nd *Node) Sessions() int { return len(nd.sessions) }

// Session returns the i-th session handle.
func (nd *Node) Session(i int) *Session { return nd.sessions[i] }

// Config returns the node's effective configuration.
func (nd *Node) Config() Config { return nd.cfg }

// Completed returns how many operations of the given class this node's
// sessions have completed.
func (nd *Node) Completed(c OpCode) uint64 { return nd.completed[c].Load() }

// CompletedTotal sums completions across operation classes.
func (nd *Node) CompletedTotal() uint64 {
	var t uint64
	for i := range nd.completed {
		t += nd.completed[i].Load()
	}
	return t
}

// Stats is a snapshot of a node's slow-path activity.
type Stats struct {
	SlowReads    uint64 // relaxed reads served by quorum rounds
	SlowWrites   uint64 // relaxed writes that needed a TS quorum round
	EpochBumps   uint64 // acquire-side transitions to the slow path
	SlowReleases uint64 // releases that published a DM-set
}

// SlowPathStats snapshots the node's slow-path counters.
func (nd *Node) SlowPathStats() Stats {
	return Stats{
		SlowReads:    nd.slowReads.Load(),
		SlowWrites:   nd.slowWrites.Load(),
		EpochBumps:   nd.epochBumps.Load(),
		SlowReleases: nd.slowRels.Load(),
	}
}
