// Package server exposes a Kite node to external processes: it listens on a
// per-node UDP address, leases the node's worker-owned sessions to remote
// clients, and bridges their operations onto the asynchronous Submit/Done
// path of kite/internal/core.
//
// The client link has the same contract as the replica-to-replica transport:
// unreliable datagrams, one frame per packet. Reliability lives at the
// edges — the client library (package kite/client) retransmits requests, and
// the server keeps a per-session cache of completed replies so a
// retransmitted request is answered from the cache instead of re-executed
// (exactly-once per (session, seq)). Because datagrams can also reorder, the
// server submits a session's data ops strictly in client sequence order,
// holding back frames that arrive early.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/core"
	"kite/internal/membership"
	"kite/internal/proto"
	"kite/internal/transport"
)

// Config parameterises a session server.
type Config struct {
	// Addr is the UDP address to listen on (host:port; host:0 picks a
	// port, see Server.Addr).
	Addr string
	// MaxSessions bounds concurrently leased sessions. 0 means every
	// session of the node may be leased.
	MaxSessions int
	// LeaseTimeout expires a leased session after this much client
	// silence, returning it to the pool. 0 means DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// ReplyDepth bounds the reply queue; overflow drops replies (clients
	// retry). 0 means DefaultReplyDepth.
	ReplyDepth int
	// Groups and Group describe this node's place in a sharded deployment
	// (Group in [0, Groups)): the shard map advertised to clients in the
	// ping reply, so Dial can verify it is talking to the group it thinks
	// it is. Groups == 0 means unsharded (equivalent to 1 group, group 0).
	Groups int
	Group  int
	// FlushDelay bounds how long the reply flusher lingers collecting a
	// sub-batch burst before sending (transport.DefaultFlushDelay if zero;
	// negative disables lingering — every drain flushes immediately). A
	// lone reply always flushes immediately regardless.
	FlushDelay time.Duration
}

// Defaults for Config zero values.
const (
	DefaultLeaseTimeout = time.Minute
	DefaultReplyDepth   = 4096
)

// maxHeldOut bounds how many reordered (future-seq) requests a session
// buffers; beyond that early frames are dropped and the client retries.
const maxHeldOut = 256

// Stats counts server-level events.
type Stats struct {
	Requests       atomic.Uint64 // well-formed frames received
	BatchedOps     atomic.Uint64 // data ops that arrived inside batch frames
	Retransmits    atomic.Uint64 // duplicate requests answered from cache
	Held           atomic.Uint64 // reordered requests buffered for in-order submit
	Replies        atomic.Uint64 // replies sent
	DroppedReplies atomic.Uint64 // replies dropped on queue overflow
	Expired        atomic.Uint64 // sessions reclaimed by lease timeout
}

// Server is one node's client-facing session server.
type Server struct {
	nd   *core.Node
	cfg  Config
	conn *net.UDPConn
	bc   *transport.BatchConn

	mu       sync.Mutex
	sessions map[uint32]*clientSession
	free     []*core.Session
	nextID   uint32
	// opens dedupes retransmitted Open requests — leasing once per
	// (client addr, seq) instead of leaking one lease per lost reply.
	opens map[openKey]openEntry

	replyCh chan outReply
	stats   Stats
	closed  atomic.Bool
	wg      sync.WaitGroup
	stopJan chan struct{}
}

type outReply struct {
	dest *transport.UDPDest
	rep  proto.ClientReply
}

type openKey struct {
	addr string
	seq  uint64
}

type openEntry struct {
	rep  proto.ClientReply
	when time.Time
}

// clientSession is one leased node session plus the bridging state that
// makes the lossy client link exactly-once and in-order.
type clientSession struct {
	id uint32
	cs *core.Session

	mu         sync.Mutex
	addr       *net.UDPAddr       // latest client address; replies go here
	dest       *transport.UDPDest // addr with its precomputed raw sockaddr
	nextSeq    uint64             // next data-op seq to submit to the core session
	heldOut    map[uint64]heldReq
	inflight   map[uint64]struct{}
	done       map[uint64]proto.ClientReply // completed replies kept for retransmits
	lastActive time.Time
	// epoch is the node's membership epoch this session last observed.
	// When the node's installed epoch moves past it, the next data reply
	// carries ClientFlagReconfigured (once per change) so the client
	// re-pings for the new membership.
	epoch uint32
}

type heldReq struct {
	op       uint8
	key      uint64
	delta    uint64
	expected []byte
	value    []byte
}

// New binds the UDP socket and starts the server's goroutines. The node may
// be started before or after New, but must be started for ops to complete.
func New(nd *core.Node, cfg Config) (*Server, error) {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.ReplyDepth <= 0 {
		cfg.ReplyDepth = DefaultReplyDepth
	}
	switch {
	case cfg.FlushDelay == 0:
		cfg.FlushDelay = transport.DefaultFlushDelay
	case cfg.FlushDelay < 0:
		cfg.FlushDelay = 0
	}
	if cfg.Groups > proto.MaxGroups {
		return nil, fmt.Errorf("server: %d groups exceeds %d", cfg.Groups, proto.MaxGroups)
	}
	if cfg.Groups > 0 && (cfg.Group < 0 || cfg.Group >= cfg.Groups) {
		return nil, fmt.Errorf("server: group %d outside [0,%d)", cfg.Group, cfg.Groups)
	}
	la, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: resolve %s: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		nd:       nd,
		cfg:      cfg,
		conn:     conn,
		bc:       transport.NewBatchConn(conn, nil),
		sessions: make(map[uint32]*clientSession),
		opens:    make(map[openKey]openEntry),
		replyCh:  make(chan outReply, cfg.ReplyDepth),
		stopJan:  make(chan struct{}),
	}
	s.free = leasePool(nd, cfg)
	s.wg.Add(3)
	go s.recvLoop()
	go s.sendLoop()
	go s.janitor()
	return s, nil
}

// Addr reports the bound UDP address (useful with :0 binds).
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Rebind points the server at a freshly restarted core node, keeping the
// client-facing socket (and thus every client's dial target) alive across
// the replica's restart. All leases are dropped — the leased sessions
// belonged to the dead incarnation, so their outstanding ops already failed
// with ErrStopped — and clients observe ClientErrNoSession on their next
// frame (surfaced as ErrSessionExpired), re-leasing with NewSession exactly
// as they would after a lease timeout. Fresh leases are handed out
// immediately, but their operations buffer inside the rejoining node until
// its catch-up sweep completes (see OPERATIONS.md "Restarting a replica").
func (s *Server) Rebind(nd *core.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nd = nd
	s.sessions = make(map[uint32]*clientSession)
	s.opens = make(map[openKey]openEntry)
	s.free = leasePool(nd, s.cfg)
}

// leasePool builds the leasable session set for nd under cfg — shared by
// New (initial boot) and Rebind (post-restart) so the two can never
// diverge on pool sizing.
func leasePool(nd *core.Node, cfg Config) []*core.Session {
	max := nd.Sessions()
	if cfg.MaxSessions > 0 && cfg.MaxSessions < max {
		max = cfg.MaxSessions
	}
	pool := make([]*core.Session, 0, max)
	for i := 0; i < max; i++ {
		pool = append(pool, nd.Session(i))
	}
	return pool
}

// Stats exposes the server counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Close stops the server. Leased node sessions simply stop receiving
// traffic; the node itself is not stopped.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.stopJan)
	s.conn.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) recvLoop() {
	defer s.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n > 0 && buf[0] == proto.ClientOpBatch {
			var b proto.ClientBatch
			if b.Unmarshal(buf[:n]) != nil {
				continue // corrupt datagram: drop, like a bad checksum
			}
			s.stats.Requests.Add(1)
			s.handleBatch(&b, raddr)
			continue
		}
		var req proto.ClientRequest
		if err := req.Unmarshal(buf[:n]); err != nil {
			continue // corrupt datagram: drop, like a bad checksum
		}
		s.stats.Requests.Add(1)
		s.handle(&req, raddr)
	}
}

// sendLoop drains the reply queue and ships replies in batched syscalls:
// each drained reply marshals into its own reused buffer and the run goes
// out as one WriteBatch (sendmmsg where available). The flush policy is the
// transport's: a lone reply flushes immediately, a burst below a full batch
// lingers up to Config.FlushDelay for stragglers. replyCh is never closed —
// core-worker Done callbacks may call reply() at any time, even during
// Close — so the loop exits on the stop signal instead.
func (s *Server) sendLoop() {
	defer s.wg.Done()
	bufs := make([][]byte, transport.MaxIOBatch)
	for i := range bufs {
		bufs[i] = make([]byte, 0, 256)
	}
	dgs := make([]transport.Datagram, 0, transport.MaxIOBatch)
	pending := make([]outReply, 0, transport.MaxIOBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stopJan:
			return
		case out := <-s.replyCh:
			pending = append(pending[:0], out)
		}
	fill:
		for len(pending) < cap(pending) {
			select {
			case out := <-s.replyCh:
				pending = append(pending, out)
			default:
				break fill
			}
		}
		if len(pending) >= 2 && len(pending) < cap(pending) && s.cfg.FlushDelay > 0 {
			timer.Reset(s.cfg.FlushDelay)
			expired := false
			for !expired && len(pending) < cap(pending) {
				select {
				case out := <-s.replyCh:
					pending = append(pending, out)
				case <-timer.C:
					expired = true
				}
			}
			if !expired && !timer.Stop() {
				<-timer.C
			}
		}
		dgs = dgs[:0]
		for i := range pending {
			b, err := pending[i].rep.AppendMarshal(bufs[len(dgs)][:0])
			if err != nil {
				continue
			}
			bufs[len(dgs)] = b
			dgs = append(dgs, transport.Datagram{Buf: b, Dest: pending[i].dest})
		}
		if len(dgs) > 0 {
			n, _ := s.bc.WriteBatch(dgs)
			s.stats.Replies.Add(uint64(n))
		}
	}
}

// reply queues a reply datagram; full queue drops it (the client retries).
func (s *Server) reply(dest *transport.UDPDest, rep proto.ClientReply) {
	if s.closed.Load() {
		return
	}
	select {
	case s.replyCh <- outReply{dest: dest, rep: rep}:
	default:
		s.stats.DroppedReplies.Add(1)
	}
}

// sameUDPAddr reports whether two addresses refer to the same endpoint
// without allocating (unlike comparing String() forms).
func sameUDPAddr(a, b *net.UDPAddr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Port == b.Port && a.Zone == b.Zone && a.IP.Equal(b.IP)
}

func (s *Server) handle(req *proto.ClientRequest, raddr *net.UDPAddr) {
	switch req.Op {
	case proto.ClientOpPing:
		nd := s.node()
		v := nd.View()
		s.reply(transport.NewUDPDest(raddr), proto.ClientReply{
			Status: proto.ClientOK, Flags: proto.ClientFlagControl, Seq: req.Seq,
			Value: proto.AppendNodeInfo(nil, s.cfg.Groups, s.cfg.Group, v.Epoch, v.Members),
		})
	case proto.ClientOpJoin:
		s.handleReconfig(req, raddr, true)
	case proto.ClientOpRemove:
		s.handleReconfig(req, raddr, false)
	case proto.ClientOpOpen:
		s.handleOpen(req, raddr)
	case proto.ClientOpClose:
		s.release(req.Sess)
		s.reply(transport.NewUDPDest(raddr), proto.ClientReply{
			Status: proto.ClientOK, Flags: proto.ClientFlagControl,
			Sess: req.Sess, Seq: req.Seq,
		})
	default:
		s.handleData(req, raddr)
	}
}

func (s *Server) handleOpen(req *proto.ClientRequest, raddr *net.UDPAddr) {
	dest := transport.NewUDPDest(raddr)
	key := openKey{addr: raddr.String(), seq: req.Seq}
	s.mu.Lock()
	if e, ok := s.opens[key]; ok {
		s.mu.Unlock()
		s.stats.Retransmits.Add(1)
		s.reply(dest, e.rep)
		return
	}
	if len(s.free) == 0 {
		s.mu.Unlock()
		s.reply(dest, proto.ClientReply{
			Status: proto.ClientErrNoCapacity, Flags: proto.ClientFlagControl, Seq: req.Seq,
		})
		return
	}
	cs := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.nextID++ // ids start at 1 and are never reused, so stale frames miss
	sess := &clientSession{
		id: s.nextID, cs: cs, addr: raddr, dest: dest, nextSeq: 1,
		heldOut:    make(map[uint64]heldReq),
		inflight:   make(map[uint64]struct{}),
		done:       make(map[uint64]proto.ClientReply),
		lastActive: time.Now(),
		epoch:      s.nd.ConfigEpoch(),
	}
	s.sessions[sess.id] = sess
	rep := proto.ClientReply{
		Status: proto.ClientOK, Flags: proto.ClientFlagControl, Sess: sess.id, Seq: req.Seq,
	}
	s.opens[key] = openEntry{rep: rep, when: time.Now()}
	s.mu.Unlock()
	s.reply(dest, rep)
}

// release returns a leased session to the pool. The underlying core session
// may still be draining ops; that is safe — session order guarantees the
// next lessee's ops queue behind them.
func (s *Server) release(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return
	}
	delete(s.sessions, id)
	s.free = append(s.free, sess.cs)
}

func (s *Server) lookup(id uint32) *clientSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// node returns the current core node (it changes across Rebind).
func (s *Server) node() *core.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nd
}

// handleReconfig drives a join/remove request: the node id travels in Key,
// the committed configuration returns in the reply's Value. The CAS can
// take protocol round trips, so it runs off the receive loop; duplicate
// goroutines from client retransmissions are harmless — the underlying
// reconfiguration is idempotent and every goroutine replies (the client
// keeps the first).
func (s *Server) handleReconfig(req *proto.ClientRequest, raddr *net.UDPAddr, add bool) {
	nd := s.node()
	id, seq := uint8(req.Key), req.Seq
	go func() {
		var (
			cfg membership.Config
			err error
		)
		if add {
			cfg, err = nd.ReconfigureAdd(id, 0)
		} else {
			cfg, err = nd.ReconfigureRemove(id, 0)
		}
		rep := proto.ClientReply{
			Status: proto.ClientOK, Flags: proto.ClientFlagControl, Seq: seq,
			Value: cfg.Encode(),
		}
		if err != nil {
			rep.Status, rep.Value = proto.ClientErrConflict, nil
		}
		s.reply(transport.NewUDPDest(raddr), rep)
	}()
}

// handleBatch unrolls a batch frame: op i is exactly an individual request
// with seq b.Seq+i, so the in-order gate, dedup and reply cache need no
// batch-specific cases — a retransmitted batch is answered per-op from the
// cache, a reordered one is held per-op until its gap fills.
func (s *Server) handleBatch(b *proto.ClientBatch, raddr *net.UDPAddr) {
	s.stats.BatchedOps.Add(uint64(len(b.Ops)))
	for i, op := range b.Ops {
		req := proto.ClientRequest{
			Op: op.Code, Sess: b.Sess, Seq: b.Seq + uint64(i), Acked: b.Acked,
			Key: op.Key, Delta: op.Delta, Expected: op.Expected, Value: op.Value,
		}
		s.handleData(&req, raddr)
	}
}

func (s *Server) handleData(req *proto.ClientRequest, raddr *net.UDPAddr) {
	sess := s.lookup(req.Sess)
	if sess == nil {
		s.reply(transport.NewUDPDest(raddr), proto.ClientReply{
			Status: proto.ClientErrNoSession, Sess: req.Sess, Seq: req.Seq,
		})
		return
	}

	sess.mu.Lock()
	// The precomputed destination is rebuilt only when the client's address
	// actually moved, so the steady-state data path reuses it per reply.
	if sess.dest == nil || !sameUDPAddr(sess.addr, raddr) {
		sess.dest = transport.NewUDPDest(raddr)
	}
	sess.addr = raddr
	sess.lastActive = time.Now()
	// The client has every reply below Acked; drop them from the cache.
	for seq := range sess.done {
		if seq < req.Acked {
			delete(sess.done, seq)
		}
	}
	if rep, ok := sess.done[req.Seq]; ok {
		// Retransmitted request whose reply may have been lost: answer
		// from the cache without re-executing.
		dest := sess.dest
		sess.mu.Unlock()
		s.stats.Retransmits.Add(1)
		s.reply(dest, rep)
		return
	}
	if _, ok := sess.inflight[req.Seq]; ok || req.Seq < sess.nextSeq {
		// Already executing (reply will come), or completed and acked
		// (a straggler duplicate): ignore.
		sess.mu.Unlock()
		return
	}
	if req.Seq > sess.nextSeq {
		// Reordered arrival: buffer until the gap fills. Payloads alias
		// the recv buffer, so copy them out.
		if len(sess.heldOut) < maxHeldOut {
			sess.heldOut[req.Seq] = heldReq{
				op: req.Op, key: req.Key, delta: req.Delta,
				expected: bytes.Clone(req.Expected), value: bytes.Clone(req.Value),
			}
			s.stats.Held.Add(1)
		}
		sess.mu.Unlock()
		return
	}
	// req.Seq == nextSeq: submit it, then drain any buffered successors.
	submits := []heldReq{{
		op: req.Op, key: req.Key, delta: req.Delta,
		expected: bytes.Clone(req.Expected), value: bytes.Clone(req.Value),
	}}
	seqs := []uint64{req.Seq}
	sess.inflight[req.Seq] = struct{}{}
	sess.nextSeq++
	for {
		h, ok := sess.heldOut[sess.nextSeq]
		if !ok {
			break
		}
		delete(sess.heldOut, sess.nextSeq)
		sess.inflight[sess.nextSeq] = struct{}{}
		submits = append(submits, h)
		seqs = append(seqs, sess.nextSeq)
		sess.nextSeq++
	}
	sess.mu.Unlock()

	for i, h := range submits {
		s.submit(sess, seqs[i], h)
	}
}

// submit bridges one data op onto the core session. Submit may block when
// the worker's admission queue is full — that stalls the recv loop and lets
// excess client datagrams drop at the socket, which is exactly the
// backpressure story of the rest of the system.
func (s *Server) submit(sess *clientSession, seq uint64, h heldReq) {
	r := &core.Request{
		Code: core.OpCode(h.op), Key: h.key, Delta: h.delta,
		Expected: h.expected, Val: h.value,
	}
	epochNow := func() uint32 { return s.node().ConfigEpoch() }
	r.Done = func(r *core.Request) {
		rep := proto.ClientReply{Status: proto.ClientOK, Sess: sess.id, Seq: seq}
		if r.Err != nil {
			rep.Status = proto.ClientErrStopped
			if errors.Is(r.Err, core.ErrReservedKey) {
				rep.Status = proto.ClientErrReservedKey
			}
		} else {
			rep.Value = bytes.Clone(r.Out)
			if r.Swapped {
				rep.Flags |= proto.ClientFlagSwapped
			}
		}
		cur := epochNow()
		sess.mu.Lock()
		if cur != sess.epoch {
			// One-shot notification per epoch change: the client re-pings
			// for the new membership when it sees the flag.
			sess.epoch = cur
			rep.Flags |= proto.ClientFlagReconfigured
		}
		delete(sess.inflight, seq)
		sess.done[seq] = rep
		dest := sess.dest
		sess.mu.Unlock()
		s.reply(dest, rep)
	}
	sess.cs.Submit(r)
}

// janitor expires sessions whose client went silent, returning them to the
// pool so crashed clients do not leak the node's fixed session set.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.LeaseTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopJan:
			return
		case now := <-tick.C:
			var expired []uint32
			s.mu.Lock()
			for id, sess := range s.sessions {
				sess.mu.Lock()
				idle := now.Sub(sess.lastActive)
				sess.mu.Unlock()
				if idle > s.cfg.LeaseTimeout {
					expired = append(expired, id)
				}
			}
			for key, e := range s.opens {
				if now.Sub(e.when) > s.cfg.LeaseTimeout {
					delete(s.opens, key)
				}
			}
			s.mu.Unlock()
			for _, id := range expired {
				s.release(id)
				s.stats.Expired.Add(1)
			}
		}
	}
}
