package server

import (
	"net"
	"testing"
	"time"

	"kite/internal/core"
	"kite/internal/proto"
	"kite/internal/transport"
)

// startNode runs a single-replica deployment (quorum 1: every op completes
// against the local store) with a session server, returning both plus a
// cleanup.
func startNode(t *testing.T, cfg Config) (*core.Node, *Server) {
	t.Helper()
	tr := transport.NewInProc(1, 1, 0)
	nd, err := core.NewNode(0, core.Config{
		Nodes: 1, Workers: 1, SessionsPerWorker: 4, KVSCapacity: 1 << 10,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := New(nd, cfg)
	if err != nil {
		nd.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		nd.Stop()
		tr.Close()
	})
	return nd, srv
}

// rawClient is a frame-level test client: no retries, no demux — it sends
// exactly the datagrams the test specifies and reads raw replies.
type rawClient struct {
	t       *testing.T
	conn    *net.UDPConn
	ctrlSeq uint64
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn}
}

func (rc *rawClient) send(req proto.ClientRequest) {
	rc.t.Helper()
	frame, err := req.AppendMarshal(nil)
	if err != nil {
		rc.t.Fatal(err)
	}
	if _, err := rc.conn.Write(frame); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawClient) recv() proto.ClientReply {
	rc.t.Helper()
	buf := make([]byte, 2048)
	rc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := rc.conn.Read(buf)
	if err != nil {
		rc.t.Fatalf("no reply: %v", err)
	}
	var rep proto.ClientReply
	if err := rep.Unmarshal(buf[:n]); err != nil {
		rc.t.Fatal(err)
	}
	rep.Value = append([]byte(nil), rep.Value...)
	return rep
}

// open leases a session. Each open uses a fresh control seq — the server
// dedupes retransmitted opens by (addr, seq).
func (rc *rawClient) open() uint32 {
	rc.t.Helper()
	rc.ctrlSeq++
	rc.send(proto.ClientRequest{Op: proto.ClientOpOpen, Seq: rc.ctrlSeq})
	rep := rc.recv()
	if rep.Status != proto.ClientOK || rep.Sess == 0 {
		rc.t.Fatalf("open: %+v", rep)
	}
	return rep.Sess
}

func TestServerPingOpenRoundTrip(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())

	rc.send(proto.ClientRequest{Op: proto.ClientOpPing, Seq: 7})
	rep := rc.recv()
	if rep.Status != proto.ClientOK || rep.Seq != 7 || rep.Flags&proto.ClientFlagControl == 0 {
		t.Fatalf("ping reply: %+v", rep)
	}

	sess := rc.open()
	// Write then read back through the leased session.
	rc.send(proto.ClientRequest{Op: proto.ClientOpWrite, Sess: sess, Seq: 1, Key: 5, Value: []byte("v")})
	if rep := rc.recv(); rep.Status != proto.ClientOK || rep.Seq != 1 {
		t.Fatalf("write reply: %+v", rep)
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpRead, Sess: sess, Seq: 2, Key: 5})
	if rep := rc.recv(); rep.Status != proto.ClientOK || string(rep.Value) != "v" {
		t.Fatalf("read reply: %+v", rep)
	}
}

func TestServerDedupesRetransmits(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	// The same FAA sent three times must execute once: every reply reports
	// the same old value, and the counter advances by one delta only.
	for i := 0; i < 3; i++ {
		rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 1, Key: 9, Delta: 10})
		rep := rc.recv()
		if rep.Status != proto.ClientOK || core.DecodeUint64(rep.Value) != 0 {
			t.Fatalf("faa retransmit %d: %+v", i, rep)
		}
	}
	if got := srv.Stats().Retransmits.Load(); got != 2 {
		t.Fatalf("Retransmits = %d, want 2", got)
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 2, Key: 9, Delta: 0})
	if rep := rc.recv(); core.DecodeUint64(rep.Value) != 10 {
		t.Fatalf("counter advanced more than once: %d", core.DecodeUint64(rep.Value))
	}
}

func TestServerReordersToSequence(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	// Seq 2 arrives before seq 1: the server must hold it and execute
	// 1 then 2 — the FAA old values prove the order.
	rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 2, Key: 3, Delta: 100})
	time.Sleep(50 * time.Millisecond) // let it land (and be held)
	rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 1, Key: 3, Delta: 1})

	got := map[uint64]uint64{} // seq -> old value
	for i := 0; i < 2; i++ {
		rep := rc.recv()
		if rep.Status != proto.ClientOK {
			t.Fatalf("reply: %+v", rep)
		}
		got[rep.Seq] = core.DecodeUint64(rep.Value)
	}
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("execution order wrong: olds=%v (want seq1->0, seq2->1)", got)
	}
	if srv.Stats().Held.Load() == 0 {
		t.Fatal("reordered request was not held")
	}
}

// sendBatch marshals and sends one batch frame — several data ops in a
// single datagram.
func (rc *rawClient) sendBatch(b proto.ClientBatch) {
	rc.t.Helper()
	frame, err := b.AppendMarshal(nil)
	if err != nil {
		rc.t.Fatal(err)
	}
	if _, err := rc.conn.Write(frame); err != nil {
		rc.t.Fatal(err)
	}
}

func TestServerBatchSingleDatagram(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	// Three ops pipelined in ONE datagram: two writes and an FAA whose old
	// value proves it executed after them in session order.
	rc.sendBatch(proto.ClientBatch{
		Sess: sess, Seq: 1,
		Ops: []proto.BatchOp{
			{Code: proto.ClientOpFAA, Key: 7, Delta: 3},
			{Code: proto.ClientOpWrite, Key: 8, Value: []byte("v8")},
			{Code: proto.ClientOpFAA, Key: 7, Delta: 10},
		},
	})
	olds := map[uint64]uint64{}
	for i := 0; i < 3; i++ {
		rep := rc.recv()
		if rep.Status != proto.ClientOK {
			t.Fatalf("batched op reply: %+v", rep)
		}
		if rep.Seq == 1 || rep.Seq == 3 {
			olds[rep.Seq] = core.DecodeUint64(rep.Value)
		}
	}
	// In-order execution inside the batch: the first FAA saw 0, the second
	// saw the first's delta.
	if olds[1] != 0 || olds[3] != 3 {
		t.Fatalf("batch executed out of order: olds=%v", olds)
	}
	if got := srv.Stats().BatchedOps.Load(); got != 3 {
		t.Fatalf("BatchedOps = %d, want 3 (>= 2 ops in a single datagram)", got)
	}
	// The read-back proves the write landed too.
	rc.send(proto.ClientRequest{Op: proto.ClientOpRead, Sess: sess, Seq: 4, Key: 8})
	if rep := rc.recv(); string(rep.Value) != "v8" {
		t.Fatalf("batched write lost: %+v", rep)
	}
}

func TestServerBatchRetransmitDedupes(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	b := proto.ClientBatch{
		Sess: sess, Seq: 1,
		Ops: []proto.BatchOp{
			{Code: proto.ClientOpFAA, Key: 5, Delta: 1},
			{Code: proto.ClientOpFAA, Key: 5, Delta: 1},
		},
	}
	// Original plus two retransmissions; each waits for its replies so the
	// retransmits hit the reply cache rather than the still-inflight
	// ignore path. Every reply must answer from the same exactly-once
	// execution: seq 1 -> old 0, seq 2 -> old 1.
	for i := 0; i < 3; i++ {
		rc.sendBatch(b)
		for j := 0; j < 2; j++ {
			rep := rc.recv()
			old := core.DecodeUint64(rep.Value)
			if (rep.Seq == 1 && old != 0) || (rep.Seq == 2 && old != 1) {
				t.Fatalf("retransmitted batch re-executed: seq %d old %d", rep.Seq, old)
			}
		}
	}
	if srv.Stats().Retransmits.Load() != 4 {
		t.Fatalf("Retransmits = %d, want 4", srv.Stats().Retransmits.Load())
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 3, Key: 5, Delta: 0})
	if rep := rc.recv(); core.DecodeUint64(rep.Value) != 2 {
		t.Fatalf("counter = %d after retransmitted batch, want 2", core.DecodeUint64(rep.Value))
	}
}

func TestServerBatchReorderedToSequence(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	// The batch with seqs 2-3 arrives before seq 1: its ops must be held
	// and execute after seq 1, proven by FAA old values.
	rc.sendBatch(proto.ClientBatch{
		Sess: sess, Seq: 2,
		Ops: []proto.BatchOp{
			{Code: proto.ClientOpFAA, Key: 9, Delta: 10},
			{Code: proto.ClientOpFAA, Key: 9, Delta: 100},
		},
	})
	time.Sleep(50 * time.Millisecond)
	rc.send(proto.ClientRequest{Op: proto.ClientOpFAA, Sess: sess, Seq: 1, Key: 9, Delta: 1})

	got := map[uint64]uint64{}
	for i := 0; i < 3; i++ {
		rep := rc.recv()
		got[rep.Seq] = core.DecodeUint64(rep.Value)
	}
	if got[1] != 0 || got[2] != 1 || got[3] != 11 {
		t.Fatalf("execution order wrong: olds=%v (want 1->0, 2->1, 3->11)", got)
	}
	if srv.Stats().Held.Load() == 0 {
		t.Fatal("reordered batch ops were not held")
	}
}

func TestServerSessionErrors(t *testing.T) {
	_, srv := startNode(t, Config{MaxSessions: 2})
	rc := dialRaw(t, srv.Addr())

	// Unknown session.
	rc.send(proto.ClientRequest{Op: proto.ClientOpRead, Sess: 999, Seq: 1, Key: 1})
	if rep := rc.recv(); rep.Status != proto.ClientErrNoSession {
		t.Fatalf("unknown session: %+v", rep)
	}

	// Capacity: two leases succeed, the third is refused, close frees one.
	s1 := rc.open()
	s2 := rc.open()
	rc.send(proto.ClientRequest{Op: proto.ClientOpOpen, Seq: 100})
	if rep := rc.recv(); rep.Status != proto.ClientErrNoCapacity {
		t.Fatalf("over-capacity open: %+v", rep)
	}
	// A retransmitted open must not lease again: same (addr, seq) answers
	// from the open cache with the same id.
	rc.send(proto.ClientRequest{Op: proto.ClientOpOpen, Seq: rc.ctrlSeq})
	if rep := rc.recv(); rep.Status != proto.ClientOK || rep.Sess != s2 {
		t.Fatalf("retransmitted open: %+v, want sess %d", rep, s2)
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpClose, Sess: s1, Seq: 101})
	if rep := rc.recv(); rep.Status != proto.ClientOK {
		t.Fatalf("close: %+v", rep)
	}
	s3 := rc.open()
	if s3 == s1 {
		t.Fatal("session id reused")
	}
	// The closed lease is gone.
	rc.send(proto.ClientRequest{Op: proto.ClientOpRead, Sess: s1, Seq: 1, Key: 1})
	if rep := rc.recv(); rep.Status != proto.ClientErrNoSession {
		t.Fatalf("closed session still live: %+v", rep)
	}
}

func TestServerLeaseExpiry(t *testing.T) {
	_, srv := startNode(t, Config{LeaseTimeout: 100 * time.Millisecond})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Expired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpRead, Sess: sess, Seq: 1, Key: 1})
	if rep := rc.recv(); rep.Status != proto.ClientErrNoSession {
		t.Fatalf("expired session still live: %+v", rep)
	}
}

func TestServerStoppedNode(t *testing.T) {
	nd, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()
	nd.Stop()

	rc.send(proto.ClientRequest{Op: proto.ClientOpWrite, Sess: sess, Seq: 1, Key: 1, Value: []byte("x")})
	if rep := rc.recv(); rep.Status != proto.ClientErrStopped {
		t.Fatalf("op on stopped node: %+v", rep)
	}
}

func TestServerAckPrunesCache(t *testing.T) {
	_, srv := startNode(t, Config{})
	rc := dialRaw(t, srv.Addr())
	sess := rc.open()

	rc.send(proto.ClientRequest{Op: proto.ClientOpWrite, Sess: sess, Seq: 1, Key: 1, Value: []byte("a")})
	rc.recv()
	// Acked=2 tells the server seq 1's reply arrived; its cache entry must
	// go, so a (buggy, never happens with the real client) retransmit of
	// seq 1 is silently ignored rather than re-executed.
	rc.send(proto.ClientRequest{Op: proto.ClientOpWrite, Sess: sess, Seq: 2, Acked: 2, Key: 1, Value: []byte("b")})
	rc.recv()

	cs := srv.lookup(sess)
	cs.mu.Lock()
	_, cached := cs.done[1]
	cs.mu.Unlock()
	if cached {
		t.Fatal("acked reply still cached")
	}
	rc.send(proto.ClientRequest{Op: proto.ClientOpWrite, Sess: sess, Seq: 1, Key: 1, Value: []byte("a")})
	rc.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 256)
	if n, _ := rc.conn.Read(buf); n > 0 {
		t.Fatal("stale acked retransmit was answered")
	}
}
