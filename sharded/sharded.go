// Package sharded runs N independent Kite replica groups over one key
// space, in-process, and exposes them through the same kite.Session
// interface as a single-group deployment. It is the scaling layer above
// kite.Cluster: a single group's throughput is bounded by its replication
// degree (every relaxed write broadcasts to all replicas; every
// release/acquire quorum spans the whole membership), so machines beyond
// the replication degree buy nothing — partitioning the key space into
// groups is what converts machines into throughput.
//
// Keys are routed to groups by a fixed hash (kite/internal/shard.Map);
// Release Consistency is preserved across groups by fencing a session's
// relaxed writes in every group it touched before a release (or RMW)
// executes in its own group. See that package and DESIGN.md "Sharding" for
// the protocol argument.
//
// The multi-process equivalent is kite-node's -groups/-group flags plus
// client.DialSharded.
package sharded

import (
	"fmt"
	"path/filepath"
	"time"

	"kite"
	"kite/internal/core"
	"kite/internal/shard"
	"kite/internal/transport"
)

// Cluster is an in-process sharded Kite deployment: Groups independent
// replica groups, each a complete kite.Cluster with its own membership and
// transport, plus the key routing that binds them into one key space.
type Cluster struct {
	groups []*kite.Cluster
	m      shard.Map
}

// NewCluster starts groups independent replica groups, each configured by
// opts (so the deployment has groups × opts.Nodes replicas in total).
// groups < 1 is rejected; groups == 1 is exactly a kite.Cluster behind the
// sharded routing (the identity map). When opts.WALDir is set, each group
// logs under its own group-<g> subdirectory, so one base directory holds
// the whole deployment's durable state and restarts of the same layout
// recover from it.
func NewCluster(groups int, opts kite.Options) (*Cluster, error) {
	if groups < 1 {
		return nil, fmt.Errorf("sharded: %d groups; need at least 1", groups)
	}
	c := &Cluster{m: shard.NewMap(groups)}
	base := opts.WALDir
	for g := 0; g < groups; g++ {
		if base != "" {
			opts.WALDir = filepath.Join(base, fmt.Sprintf("group-%02d", g))
		}
		kc, err := kite.NewCluster(opts)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("sharded: group %d: %w", g, err)
		}
		c.groups = append(c.groups, kc)
	}
	return c, nil
}

// Groups returns the number of replica groups.
func (c *Cluster) Groups() int { return len(c.groups) }

// Nodes returns the number of replica slots in each group (boot members
// plus added replicas; see kite.Cluster.Nodes). The live member set is
// Members().
func (c *Cluster) Nodes() int { return c.groups[0].Nodes() }

// Members returns each group's current membership, index-aligned with
// Group. Groups reconfigure independently, so epochs may differ; a machine
// added with AddNode appears in every group's set.
func (c *Cluster) Members() []kite.Membership {
	out := make([]kite.Membership, len(c.groups))
	for g, kc := range c.groups {
		out[g] = kc.Members()
	}
	return out
}

// AddNode grows every group by one replica on the same new machine id (a
// machine hosts one replica of each group, mirroring StopNode/RestartNode).
// Each group commits its own configuration and its joiner catches up
// independently; gate on AwaitRejoin before leasing the new node's
// sessions. On a partial failure the error reports the group that refused —
// earlier groups keep their new replica (their reconfigurations committed;
// retry AddNode after fixing the cause, or remove the id again).
func (c *Cluster) AddNode() (int, error) {
	id := -1
	for g, kc := range c.groups {
		nid, err := kc.AddNode()
		if err != nil {
			return -1, fmt.Errorf("sharded: group %d: %w", g, err)
		}
		if id >= 0 && nid != id {
			return -1, fmt.Errorf("sharded: group %d assigned id %d, group 0 assigned %d", g, nid, id)
		}
		id = nid
	}
	return id, nil
}

// RemoveNode removes the machine's replica from every group.
func (c *Cluster) RemoveNode(node int) error {
	for g, kc := range c.groups {
		if err := kc.RemoveNode(node); err != nil {
			return fmt.Errorf("sharded: group %d: %w", g, err)
		}
	}
	return nil
}

// SessionsPerNode returns how many sessions each replica offers (identical
// across groups).
func (c *Cluster) SessionsPerNode() int { return c.groups[0].SessionsPerNode() }

// GroupOf reports which replica group owns key — useful for tests and
// diagnostics that need group-local keys.
func (c *Cluster) GroupOf(key uint64) int { return c.m.Group(key) }

// Group exposes one underlying replica group (stats, fault injection).
func (c *Cluster) Group(g int) *kite.Cluster { return c.groups[g] }

// Faults exposes every group's fault injector behind one fan-out surface:
// a rule applied here partitions the same machine pair in each group, the
// way a real network fault hits every replica a machine hosts.
func (c *Cluster) Faults() *transport.FaultSet {
	s := transport.NewFaultSet()
	for _, kc := range c.groups {
		s.Add(kc.Faults())
	}
	return s
}

// Session opens a sharded session at coordinates (node, sess): one
// sub-session leased at the same coordinates in every group, composed into
// a single kite.Session over the whole key space. The coordinates carry the
// usual contract — handles are single logical threads of control, and two
// handles to the same coordinates must not be used concurrently.
func (c *Cluster) Session(node, sess int) kite.Session {
	subs := make([]kite.Session, len(c.groups))
	for g, kc := range c.groups {
		subs[g] = kc.Session(node, sess)
	}
	return shard.New(subs, c.m)
}

// PauseNode makes replica node unresponsive for d in every group — the
// sleeping-machine failure of the paper's §8.4 applied to a sharded
// deployment, where one machine hosts a replica of each group.
func (c *Cluster) PauseNode(node int, d time.Duration) {
	for _, kc := range c.groups {
		kc.PauseNode(node, d)
	}
}

// StopNode crash-stops replica node in every group — the whole machine
// goes down, taking its replica of each group's state with it.
func (c *Cluster) StopNode(node int) {
	for _, kc := range c.groups {
		kc.StopNode(node)
	}
}

// CrashNode SIGKILLs replica node in every group: like StopNode, but each
// group's WAL (when enabled) is abandoned without a final fsync — the
// machine-level kill -9. See kite.Cluster.CrashNode.
func (c *Cluster) CrashNode(node int) {
	for _, kc := range c.groups {
		kc.CrashNode(node)
	}
}

// RestartNode restarts replica node in every group. Each group's fresh
// replica catches up independently against that group's surviving peers —
// there is no cross-group state to transfer, since the groups share
// nothing but the key routing. Until a group's sweep completes, its
// restarted replica buffers operations and (by acking only writes it has
// actually applied) can never satisfy the cross-shard flush fence early:
// an OpFlush completes only when every replica, this one included, has
// truly applied the session's writes.
func (c *Cluster) RestartNode(node int) error {
	for g, kc := range c.groups {
		if err := kc.RestartNode(node); err != nil {
			return fmt.Errorf("sharded: group %d: %w", g, err)
		}
	}
	return nil
}

// AwaitRejoin blocks until replica node's catch-up sweep completes in
// every group, reporting whether all did within timeout.
func (c *Cluster) AwaitRejoin(node int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for _, kc := range c.groups {
		if !kc.AwaitRejoin(node, time.Until(deadline)) {
			return false
		}
	}
	return true
}

// NodeStats sums replica node's slow-path activity counters across groups —
// the machine-level view of how often its replicas left the fast paths
// (one machine hosts a replica of every group).
func (c *Cluster) NodeStats(node int) core.Stats {
	var t core.Stats
	for _, kc := range c.groups {
		s := kc.NodeStats(node)
		t.SlowReads += s.SlowReads
		t.SlowWrites += s.SlowWrites
		t.EpochBumps += s.EpochBumps
		t.SlowReleases += s.SlowReleases
		t.LocalAcqHits += s.LocalAcqHits
		t.AcqFallbacks += s.AcqFallbacks
	}
	return t
}

// CompletedOps sums operations completed at replica node across groups.
func (c *Cluster) CompletedOps(node int) uint64 {
	var t uint64
	for _, kc := range c.groups {
		t += kc.CompletedOps(node)
	}
	return t
}

// Close stops every group.
func (c *Cluster) Close() {
	for _, kc := range c.groups {
		if kc != nil {
			kc.Close()
		}
	}
}
