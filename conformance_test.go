// Interface-conformance suite: every test in this file runs against EVERY
// Session backend — the in-process cluster, the remote client over a
// loopback-UDP 3-node deployment, and the sharded composition of each
// (2 independent replica groups behind one Session) — through the same
// kite.Session interface. This is the contract the api_redesign
// establishes: one operation model, one error taxonomy, one behavior,
// regardless of deployment.
package kite_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"kite"
	"kite/client"
	"kite/internal/core"
	"kite/internal/history"
	"kite/internal/testcluster"
	"kite/internal/verifier"
	"kite/sharded"
)

// harness is one running deployment exposing sessions by (node, session)
// coordinates plus the failure hooks the suite needs.
type harness struct {
	nodes   int
	session func(t *testing.T, node, sess int) kite.Session
	pause   func(node int, d time.Duration)
	// restart crash-stops a replica (every group of it, on the sharded
	// backends) and brings up a fresh, empty incarnation that rejoins via
	// the catch-up sweep; await blocks until that sweep completes.
	restart func(t *testing.T, node int)
	await   func(t *testing.T, node int)
	// stats snapshots replica node's slow-path counters (summed across
	// groups on the sharded backends) — the observable that proves which
	// path an acquire took.
	stats func(node int) core.Stats
}

type backendDef struct {
	name string
	make func(t *testing.T) *harness
}

// backends lists the Session implementations under test. The sharded
// variants run 2 independent replica groups (each 3 nodes) behind one
// Session — same contract, twice the membership.
func backends() []backendDef {
	return []backendDef{
		{name: "inproc", make: inprocHarness},
		{name: "remote", make: remoteHarness},
		{name: "sharded-inproc", make: shardedInprocHarness},
		{name: "sharded-remote", make: shardedRemoteHarness},
	}
}

// forEachBackend runs body once per backend, each against a fresh 3-node
// deployment.
func forEachBackend(t *testing.T, body func(t *testing.T, h *harness)) {
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			body(t, be.make(t))
		})
	}
}

func inprocHarness(t *testing.T) *harness {
	t.Helper()
	c, err := kite.NewCluster(kite.Options{
		Nodes: 3, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &harness{
		nodes:   3,
		session: func(t *testing.T, node, sess int) kite.Session { return c.Session(node, sess) },
		pause:   c.PauseNode,
		restart: func(t *testing.T, node int) {
			if err := c.RestartNode(node); err != nil {
				t.Fatalf("restart node %d: %v", node, err)
			}
		},
		await: func(t *testing.T, node int) {
			if !c.AwaitRejoin(node, 30*time.Second) {
				t.Fatalf("node %d still catching up: %+v", node, c.NodeCatchup(node))
			}
		},
		stats: c.NodeStats,
	}
}

func remoteHarness(t *testing.T) *harness {
	t.Helper()
	cl := testcluster.Start(t, 3)
	clients := cl.Dial(t)
	return &harness{
		nodes: 3,
		session: func(t *testing.T, node, sess int) kite.Session {
			s, err := clients[node].NewSession()
			if err != nil {
				t.Fatalf("lease session on node %d: %v", node, err)
			}
			return s
		},
		pause:   cl.PauseNode,
		restart: func(t *testing.T, node int) { cl.RestartNode(t, node) },
		await:   func(t *testing.T, node int) { cl.AwaitRejoin(t, node, 30*time.Second) },
		stats:   func(node int) core.Stats { return cl.Nodes[node].SlowPathStats() },
	}
}

func shardedInprocHarness(t *testing.T) *harness {
	t.Helper()
	c, err := sharded.NewCluster(2, kite.Options{
		Nodes: 3, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &harness{
		nodes:   3,
		session: func(t *testing.T, node, sess int) kite.Session { return c.Session(node, sess) },
		pause:   c.PauseNode,
		restart: func(t *testing.T, node int) {
			if err := c.RestartNode(node); err != nil {
				t.Fatalf("restart node %d: %v", node, err)
			}
		},
		await: func(t *testing.T, node int) {
			if !c.AwaitRejoin(node, 30*time.Second) {
				t.Fatalf("node %d still catching up", node)
			}
		},
		stats: c.NodeStats,
	}
}

func shardedRemoteHarness(t *testing.T) *harness {
	t.Helper()
	cl := testcluster.StartSharded(t, 2, 3)
	clients := make([]*client.ShardedClient, 3)
	for node := range clients {
		clients[node] = cl.DialSharded(t, node)
	}
	return &harness{
		nodes: 3,
		session: func(t *testing.T, node, sess int) kite.Session {
			s, err := clients[node].NewSession()
			if err != nil {
				t.Fatalf("lease sharded session on node %d: %v", node, err)
			}
			return s
		},
		pause:   cl.PauseNode,
		restart: func(t *testing.T, node int) { cl.RestartNode(t, node) },
		await:   func(t *testing.T, node int) { cl.AwaitRejoin(t, node, 30*time.Second) },
		stats: func(node int) core.Stats {
			var sum core.Stats
			for _, g := range cl.Groups {
				s := g.Nodes[node].SlowPathStats()
				sum.LocalAcqHits += s.LocalAcqHits
				sum.AcqFallbacks += s.AcqFallbacks
				sum.EpochBumps += s.EpochBumps
				sum.SlowReads += s.SlowReads
				sum.SlowWrites += s.SlowWrites
				sum.SlowReleases += s.SlowReleases
			}
			return sum
		},
	}
}

// TestConformanceOps drives every operation class through Do and the
// convenience methods.
func TestConformanceOps(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		ctx := context.Background()

		if r, err := s.Do(ctx, kite.ReadOp(1)); err != nil || r.Value != nil {
			t.Fatalf("initial read = %+v, %v", r, err)
		}
		if _, err := s.Do(ctx, kite.WriteOp(1, []byte("hello"))); err != nil {
			t.Fatal(err)
		}
		if r, _ := s.Do(ctx, kite.ReadOp(1)); string(r.Value) != "hello" {
			t.Fatalf("read = %q", r.Value)
		}
		if _, err := s.Do(ctx, kite.ReleaseOp(2, []byte("flag"))); err != nil {
			t.Fatal(err)
		}
		if r, _ := s.Do(ctx, kite.AcquireOp(2)); string(r.Value) != "flag" {
			t.Fatalf("acquire = %q", r.Value)
		}
		if r, err := s.Do(ctx, kite.FAAOp(3, 7)); err != nil || r.Uint64() != 0 {
			t.Fatalf("faa = %+v, %v", r, err)
		}
		if old, err := s.FAA(3, 0); err != nil || old != 7 {
			t.Fatalf("faa read = %d, %v", old, err)
		}
		r, err := s.Do(ctx, kite.CASOp(4, nil, []byte("A"), false))
		if err != nil || !r.Swapped || r.Value != nil {
			t.Fatalf("cas = %+v, %v", r, err)
		}
		swapped, old, _ := s.CompareAndSwap(4, []byte("X"), []byte("B"), true)
		if swapped || string(old) != "A" {
			t.Fatalf("weak cas = %v %q", swapped, old)
		}
		// Convenience methods and Do are the same surface.
		if err := s.Write(5, []byte("w")); err != nil {
			t.Fatal(err)
		}
		if v, _ := s.Read(5); string(v) != "w" {
			t.Fatalf("read = %q", v)
		}
	})
}

// TestConformanceReleaseAcquire checks the DRF handoff across sessions on
// different replicas through the interface.
func TestConformanceReleaseAcquire(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		log := history.New()
		prod := log.Wrap(h.session(t, 0, 0))
		cons := log.Wrap(h.session(t, h.nodes-1, 0))
		payload := []byte("payload")
		if err := prod.Write(100, payload); err != nil {
			t.Fatal(err)
		}
		if err := prod.ReleaseWrite(101, []byte("go")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			v, err := cons.AcquireRead(101)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == "go" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flag never visible (last %q)", v)
			}
		}
		if _, err := cons.Read(100); err != nil {
			t.Fatal(err)
		}
		// The handoff's correctness — the acquire anchored to the release
		// must expose the prior payload write — is judged by the shared
		// verifier over the recorded history.
		if rep := verifier.Check(log.Snapshot()); !rep.OK() {
			t.Fatalf("release/acquire handoff violated RC:\n%s", rep.String())
		}
	})
}

// TestConformanceDoBatch checks batch results, index alignment and the
// session-order atomicity of a batch: its ops occupy consecutive session
// positions and execute in slice order.
func TestConformanceDoBatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		ctx := context.Background()

		if rs, err := s.DoBatch(ctx, nil); rs != nil || err != nil {
			t.Fatalf("empty batch = %v, %v", rs, err)
		}

		// Sequential FAAs in one batch: the old values must be exactly
		// 0..n-1 in batch order — interleaving or reordering would break
		// the sequence.
		const n = 10
		ops := make([]kite.Op, n)
		for i := range ops {
			ops[i] = kite.FAAOp(42, 1)
		}
		results, err := s.DoBatch(ctx, ops)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != n {
			t.Fatalf("got %d results, want %d", len(results), n)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("op %d: %v", i, r.Err)
			}
			if r.Uint64() != uint64(i) {
				t.Fatalf("batch order violated: op %d saw old=%d", i, r.Uint64())
			}
		}

		// Mixed batch: writes and reads interleaved see each other in
		// slice order.
		mixed := []kite.Op{
			kite.WriteOp(50, []byte("v1")),
			kite.ReadOp(50),
			kite.WriteOp(50, []byte("v2")),
			kite.ReadOp(50),
		}
		rs, err := s.DoBatch(ctx, mixed)
		if err != nil {
			t.Fatal(err)
		}
		if string(rs[1].Value) != "v1" || string(rs[3].Value) != "v2" {
			t.Fatalf("batch internal order: read1=%q read2=%q", rs[1].Value, rs[3].Value)
		}

		// A batch larger than any single wire frame still completes and
		// stays ordered (the remote backend splits it into frames with
		// consecutive seqs).
		big := make([]kite.Op, 150)
		for i := range big {
			big[i] = kite.FAAOp(43, 1)
		}
		brs, err := s.DoBatch(ctx, big)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range brs {
			if r.Uint64() != uint64(i) {
				t.Fatalf("large batch order violated at %d: old=%d", i, r.Uint64())
			}
		}
	})
}

// TestConformanceValueTooLong checks the shared oversized-value error on
// every submission path, and that rejection leaves the session usable.
func TestConformanceValueTooLong(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		ctx := context.Background()
		big := make([]byte, kite.MaxValueLen+1)

		if err := s.Write(1, big); !errors.Is(err, kite.ErrValueTooLong) {
			t.Fatalf("oversized write: %v, want ErrValueTooLong", err)
		}
		if _, _, err := s.CompareAndSwap(1, big, []byte("x"), false); !errors.Is(err, kite.ErrValueTooLong) {
			t.Fatalf("oversized comparand: %v, want ErrValueTooLong", err)
		}
		// Batch validation is all-or-nothing on every backend: the valid
		// first op must NOT execute.
		rs, err := s.DoBatch(ctx, []kite.Op{kite.WriteOp(1, []byte("leaked")), kite.WriteOp(2, big)})
		if !errors.Is(err, kite.ErrValueTooLong) || rs != nil {
			t.Fatalf("oversized batch = %v, %v; want nil results + ErrValueTooLong", rs, err)
		}
		if v, _ := s.Read(1); string(v) == "leaked" {
			t.Fatal("rejected batch executed its valid prefix")
		}
		// Unknown op codes share the same up-front rejection.
		if _, err := s.Do(ctx, kite.Op{Code: 42}); !errors.Is(err, kite.ErrBadOp) {
			t.Fatalf("bad op code: %v, want ErrBadOp", err)
		}
		done := make(chan kite.Result, 1)
		s.DoAsync(kite.WriteOp(1, big), func(r kite.Result) { done <- r })
		if r := <-done; !errors.Is(r.Err, kite.ErrValueTooLong) {
			t.Fatalf("oversized async write: %v, want ErrValueTooLong", r.Err)
		}
		// The rejections consumed nothing: the session still works.
		if err := s.Write(1, []byte("fits")); err != nil {
			t.Fatalf("write after rejections: %v", err)
		}
		if v, err := s.Read(1); err != nil || string(v) != "fits" {
			t.Fatalf("read after rejections: %q, %v", v, err)
		}
	})
}

// TestConformanceDeadlineOnPausedNode checks per-op deadlines: an operation
// against a paused (sleeping, §8.4) replica returns promptly with the
// shared cancellation error instead of hanging, and the session survives.
func TestConformanceDeadlineOnPausedNode(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		if err := s.Write(1, []byte("before")); err != nil {
			t.Fatal(err)
		}

		h.pause(0, 700*time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := s.Do(ctx, kite.WriteOp(2, []byte("during")))
		if !errors.Is(err, kite.ErrCanceled) {
			t.Fatalf("deadline on paused node: %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline cause lost: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("Do held the caller %v past a 150ms deadline", elapsed)
		}

		// After the node wakes the session keeps working: cancellation
		// must not wedge the ordered stream on either backend.
		time.Sleep(700 * time.Millisecond)
		deadline := time.Now().Add(20 * time.Second)
		for {
			if err := s.Write(3, []byte("after")); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("session dead after cancellation: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if v, err := s.Read(3); err != nil || string(v) != "after" {
			t.Fatalf("read after recovery: %q, %v", v, err)
		}
	})
}

// TestConformanceCancelMidOp checks explicit cancellation (not deadline):
// the caller is released promptly with ErrCanceled/context.Canceled.
func TestConformanceCancelMidOp(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		h.pause(0, 500*time.Millisecond)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(100 * time.Millisecond)
			cancel()
		}()
		_, err := s.Do(ctx, kite.FAAOp(9, 1))
		if !errors.Is(err, kite.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled op: %v, want ErrCanceled + context.Canceled", err)
		}
	})
}

// TestConformanceSessionClosed checks the shared closed-session error.
func TestConformanceSessionClosed(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		if err := s.Write(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := s.Write(2, []byte("y")); !errors.Is(err, kite.ErrSessionClosed) {
			t.Fatalf("write after close: %v, want ErrSessionClosed", err)
		}
		if _, err := s.Do(context.Background(), kite.ReadOp(1)); !errors.Is(err, kite.ErrSessionClosed) {
			t.Fatalf("do after close: %v, want ErrSessionClosed", err)
		}
		if _, err := s.DoBatch(context.Background(), []kite.Op{kite.ReadOp(1)}); !errors.Is(err, kite.ErrSessionClosed) {
			t.Fatalf("batch after close: %v, want ErrSessionClosed", err)
		}
	})
}

// TestConformanceLocalAcquires checks the Hermes-style local acquire fast
// path (DESIGN.md "Local reads") through the interface, on every backend,
// via the per-node hit/fallback counters: a quiescent fully-replicated
// relaxed key is eventually served locally (LocalAcqHits advances), and an
// invalidated key — its valid bit cleared by a release's install — falls
// back to the ABD quorum read (AcqFallbacks advances).
func TestConformanceLocalAcquires(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)

		// A relaxed write full-acks, the origin broadcasts validates, and
		// from then on acquires of the key are served off the local store.
		// Validation is asynchronous, so poll until a hit lands.
		if err := s.Write(200, []byte("settled")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			before := h.stats(0).LocalAcqHits
			v, err := s.AcquireRead(200)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != "settled" {
				t.Fatalf("acquire = %q, want %q", v, "settled")
			}
			if h.stats(0).LocalAcqHits > before {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no local acquire hit on a quiescent key: %+v", h.stats(0))
			}
			time.Sleep(5 * time.Millisecond)
		}

		// Invalidation: a release's install clears the valid bit, and
		// releases are never validated — the next acquire MUST take the
		// quorum read (it carries the synchronizes-with edge) and return
		// the released value.
		fb := h.stats(0).AcqFallbacks
		if err := s.ReleaseWrite(200, []byte("released")); err != nil {
			t.Fatal(err)
		}
		v, err := s.AcquireRead(200)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != "released" {
			t.Fatalf("acquire after release = %q, want %q", v, "released")
		}
		if got := h.stats(0).AcqFallbacks; got <= fb {
			t.Fatalf("acquire of a released key did not fall back (fallbacks %d -> %d)", fb, got)
		}
	})
}

// TestConformanceAsyncPipeline checks DoAsync ordering: a pipelined burst
// completes, and a subsequent read observes the last write.
func TestConformanceAsyncPipeline(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		s := h.session(t, 0, 0)
		const n = 32
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			s.DoAsync(kite.WriteOp(7, []byte(fmt.Sprintf("v%d", i))), func(r kite.Result) { errs <- r.Err })
		}
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("async write %d: %v", i, err)
			}
		}
		if v, err := s.Read(7); err != nil || string(v) != fmt.Sprintf("v%d", n-1) {
			t.Fatalf("read after async burst: %q, %v", v, err)
		}
	})
}
