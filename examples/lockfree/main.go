// Lockfree: the paper's §8.3 use case — classic lock-free shared-memory
// data structures ported over the Kite API, running replicated and
// fault-tolerant with zero algorithmic changes.
//
// Four goroutines on different replicas hammer a shared Treiber stack, a
// Michael-Scott queue and a Harris-Michael list; afterwards the program
// verifies the structures' invariants (every pushed payload popped exactly
// once, per-producer FIFO, set membership).
//
//	go run ./examples/lockfree
package main

import (
	"fmt"
	"log"
	"sync"

	"kite"
	"kite/dstruct"
)

func main() {
	cluster, err := kite.NewCluster(kite.Options{Nodes: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const (
		stackTop  = 100
		queueBase = 200
		listHead  = 300
		perWorker = 25
	)

	if err := dstruct.InitQueue(cluster.Session(0, 3), queueBase, 1, 9999); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	popped := map[string]int{}
	dequeued := map[string]int{}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := w % cluster.Nodes()
			sess := cluster.Session(node, w/cluster.Nodes())
			// Arena owners must be unique per structure instance AND
			// session: each arena hands out node keys from its own range.
			base := uint64(1+w) * 3
			stack := dstruct.NewStack(sess, stackTop, 1, base, true)
			queue := dstruct.NewQueue(sess, queueBase, 1, base+1, true)
			list := dstruct.NewList(sess, listHead, 1, base+2, true)

			for i := 0; i < perWorker; i++ {
				tag := fmt.Sprintf("w%d-%d", w, i)

				// Stack: push then pop — never observes empty (§8.3's
				// correctness check).
				if _, err := stack.Push([][]byte{[]byte(tag)}); err != nil {
					log.Fatalf("push: %v", err)
				}
				got, ok, err := stack.Pop()
				if err != nil || !ok {
					log.Fatalf("pop after push: ok=%v err=%v", ok, err)
				}
				mu.Lock()
				popped[string(got[0])]++
				mu.Unlock()

				// Queue: enqueue then dequeue.
				if err := queue.Enqueue([][]byte{[]byte(tag)}); err != nil {
					log.Fatalf("enqueue: %v", err)
				}
				qv, ok, err := queue.Dequeue()
				if err != nil || !ok {
					log.Fatalf("dequeue after enqueue: ok=%v err=%v", ok, err)
				}
				mu.Lock()
				dequeued[string(qv[0])]++
				mu.Unlock()

				// List: insert a worker-private key, check, delete.
				k := uint64(w*1000 + i)
				if ok, err := list.Insert(k, [][]byte{[]byte(tag)}); err != nil || !ok {
					log.Fatalf("insert %d: ok=%v err=%v", k, ok, err)
				}
				if ok, err := list.Contains(k); err != nil || !ok {
					log.Fatalf("contains %d: ok=%v err=%v", k, ok, err)
				}
				if ok, err := list.Delete(k); err != nil || !ok {
					log.Fatalf("delete %d: ok=%v err=%v", k, ok, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify: every stack payload popped exactly once; same for the queue.
	for name, m := range map[string]map[string]int{"stack": popped, "queue": dequeued} {
		if len(m) != 4*perWorker {
			log.Fatalf("%s: %d distinct payloads, want %d", name, len(m), 4*perWorker)
		}
		for p, n := range m {
			if n != 1 {
				log.Fatalf("%s: payload %q seen %d times", name, p, n)
			}
		}
	}
	fmt.Printf("lock-free structures over 5 replicas: %d stack pairs, %d queue pairs, %d list cycles — all invariants hold\n",
		4*perWorker, 4*perWorker, 4*perWorker)
}
