// Lockfree: the paper's §8.3 use case — classic lock-free shared-memory
// data structures ported over the Kite API, running replicated and
// fault-tolerant with zero algorithmic changes.
//
// Four goroutines on different replicas hammer a shared Treiber stack, a
// Michael-Scott queue and a Harris-Michael list; afterwards the program
// verifies the structures' invariants (every pushed payload popped exactly
// once, per-producer FIFO, set membership).
//
// Because dstruct speaks the unified kite.Session interface, the same
// program runs over either deployment:
//
//	go run ./examples/lockfree                                # in-process cluster
//	go run ./examples/lockfree -addrs :9000,:9001,:9002       # live kite-node deployment
//
// The -addrs form connects to the session servers of running kite-node
// processes (kite-node -client-addr) and leases remote sessions instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"kite"
	"kite/client"
	"kite/dstruct"
)

// sessions returns one Session per worker plus the setup session, from
// either backend, and a cleanup.
func sessions(addrs string, workers int) (setup kite.Session, ws []kite.Session, nodes int, cleanup func()) {
	if addrs == "" {
		cluster, err := kite.NewCluster(kite.Options{Nodes: 5})
		if err != nil {
			log.Fatal(err)
		}
		ws = make([]kite.Session, workers)
		for w := range ws {
			ws[w] = cluster.Session(w%cluster.Nodes(), w/cluster.Nodes())
		}
		return cluster.Session(0, 3), ws, cluster.Nodes(), cluster.Close
	}
	list := strings.Split(addrs, ",")
	clients := make([]*client.Client, len(list))
	for i, a := range list {
		c, err := client.Dial(a, client.Options{})
		if err != nil {
			log.Fatalf("dial %s: %v", a, err)
		}
		clients[i] = c
	}
	lease := func(i int) kite.Session {
		s, err := clients[i%len(clients)].NewSession()
		if err != nil {
			log.Fatalf("lease session: %v", err)
		}
		return s
	}
	ws = make([]kite.Session, workers)
	for w := range ws {
		ws[w] = lease(w)
	}
	return lease(0), ws, len(list), func() {
		for _, c := range clients {
			c.Close()
		}
	}
}

func main() {
	addrs := flag.String("addrs", "", "comma-separated session-server addresses (empty: in-process cluster)")
	flag.Parse()

	setup, workerSessions, nodes, cleanup := sessions(*addrs, 4)
	defer cleanup()

	const (
		stackTop  = 100
		queueBase = 200
		listHead  = 300
		perWorker = 25
	)

	if err := dstruct.InitQueue(setup, queueBase, 1, 9999); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	popped := map[string]int{}
	dequeued := map[string]int{}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := workerSessions[w]
			// Arena owners must be unique per structure instance AND
			// session: each arena hands out node keys from its own range.
			base := uint64(1+w) * 3
			stack := dstruct.NewStack(sess, stackTop, 1, base, true)
			queue := dstruct.NewQueue(sess, queueBase, 1, base+1, true)
			list := dstruct.NewList(sess, listHead, 1, base+2, true)

			for i := 0; i < perWorker; i++ {
				tag := fmt.Sprintf("w%d-%d", w, i)

				// Stack: push then pop — never observes empty (§8.3's
				// correctness check).
				if _, err := stack.Push([][]byte{[]byte(tag)}); err != nil {
					log.Fatalf("push: %v", err)
				}
				got, ok, err := stack.Pop()
				if err != nil || !ok {
					log.Fatalf("pop after push: ok=%v err=%v", ok, err)
				}
				mu.Lock()
				popped[string(got[0])]++
				mu.Unlock()

				// Queue: enqueue then dequeue.
				if err := queue.Enqueue([][]byte{[]byte(tag)}); err != nil {
					log.Fatalf("enqueue: %v", err)
				}
				qv, ok, err := queue.Dequeue()
				if err != nil || !ok {
					log.Fatalf("dequeue after enqueue: ok=%v err=%v", ok, err)
				}
				mu.Lock()
				dequeued[string(qv[0])]++
				mu.Unlock()

				// List: insert a worker-private key, check, delete.
				k := uint64(w*1000 + i)
				if ok, err := list.Insert(k, [][]byte{[]byte(tag)}); err != nil || !ok {
					log.Fatalf("insert %d: ok=%v err=%v", k, ok, err)
				}
				if ok, err := list.Contains(k); err != nil || !ok {
					log.Fatalf("contains %d: ok=%v err=%v", k, ok, err)
				}
				if ok, err := list.Delete(k); err != nil || !ok {
					log.Fatalf("delete %d: ok=%v err=%v", k, ok, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify: every stack payload popped exactly once; same for the queue.
	for name, m := range map[string]map[string]int{"stack": popped, "queue": dequeued} {
		if len(m) != 4*perWorker {
			log.Fatalf("%s: %d distinct payloads, want %d", name, len(m), 4*perWorker)
		}
		for p, n := range m {
			if n != 1 {
				log.Fatalf("%s: payload %q seen %d times", name, p, n)
			}
		}
	}
	fmt.Printf("lock-free structures over %d replicas: %d stack pairs, %d queue pairs, %d list cycles — all invariants hold\n",
		nodes, 4*perWorker, 4*perWorker, 4*perWorker)
}
