// Quickstart: a 5-replica Kite deployment running the paper's motivating
// producer-consumer pattern (§1, Figure 1).
//
// The producer writes an object of 1000 fields with *relaxed* writes — the
// cheap, eventually-consistent accesses, issued as one DoBatch — and then
// raises a flag with a *release* write. The consumer polls the flag with
// *acquire* reads; the moment it observes the flag, Release Consistency
// guarantees every field of the object is visible, even though the field
// accesses never paid for strong consistency.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kite"
)

const (
	objBase   = 1000 // keys 1000..1999 hold the object's fields
	objFields = 1000
	flagKey   = 50
)

func main() {
	cluster, err := kite.NewCluster(kite.Options{Nodes: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	done := make(chan struct{})

	// Consumer: session on replica 3.
	go func() {
		defer close(done)
		sess := cluster.Session(3, 0)
		// Poll the flag with acquire reads.
		for {
			v, err := sess.AcquireRead(flagKey)
			if err != nil {
				log.Fatal(err)
			}
			if string(v) == "ready" {
				break
			}
		}
		// The acquire synchronised with the producer's release: all 1000
		// relaxed writes before it are now guaranteed visible, and these
		// relaxed reads are served from the local replica — issued as one
		// batch through the unified API.
		start := time.Now()
		reads := make([]kite.Op, objFields)
		for i := range reads {
			reads[i] = kite.ReadOp(objBase + uint64(i))
		}
		results, err := sess.DoBatch(context.Background(), reads)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range results {
			want := fmt.Sprintf("field-%d", i)
			if string(r.Value) != want {
				log.Fatalf("RC violation: field %d = %q, want %q", i, r.Value, want)
			}
		}
		fmt.Printf("consumer: observed flag, read %d fields consistently in %v\n",
			objFields, time.Since(start).Round(time.Microsecond))
	}()

	// Producer: session on replica 0. The payload goes out as one batch of
	// relaxed writes — over the remote backend this is also one datagram
	// per wire frame instead of one per field.
	sess := cluster.Session(0, 0)
	start := time.Now()
	writes := make([]kite.Op, objFields)
	for i := range writes {
		writes[i] = kite.WriteOp(objBase+uint64(i), []byte(fmt.Sprintf("field-%d", i)))
	}
	if _, err := sess.DoBatch(context.Background(), writes); err != nil {
		log.Fatal(err)
	}
	wrote := time.Since(start)
	if err := sess.ReleaseWrite(flagKey, []byte("ready")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer: %d relaxed writes in %v, then one release\n", objFields, wrote.Round(time.Microsecond))

	<-done

	// Atomic counters via fetch-and-add (Paxos under the hood).
	c0 := cluster.Session(0, 1)
	c1 := cluster.Session(1, 0)
	for i := 0; i < 10; i++ {
		if _, err := c0.FAA(77, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := c1.FAA(77, 1); err != nil {
			log.Fatal(err)
		}
	}
	total, err := c0.FAA(77, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter: 20 concurrent FAAs from two replicas -> %d\n", total)
}
