// Failover: the availability story of §8.4 live. A 5-replica deployment
// serves a mixed workload while one replica goes unresponsive for 400 ms —
// exactly the paper's failure study. The example shows:
//
//   - the cluster never stops serving (releases publish DM-sets and move on);
//
//   - the victim's acquires discover its delinquency when it wakes, flipping
//     it to the slow path (machine epoch bump);
//
//   - each key is refreshed exactly once and the replica returns to local
//     reads — the transition windows are tens of milliseconds.
//
//     go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"kite"
)

func main() {
	cluster, err := kite.NewCluster(kite.Options{Nodes: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const sleeper = 4
	var stop atomic.Bool
	var ops [5]atomic.Uint64

	// One writer/reader pair per healthy replica, synchronising through
	// release/acquire on a per-pair flag.
	for n := 0; n < 4; n++ {
		go func(n int) {
			sess := cluster.Session(n, 0)
			key := uint64(1000 * (n + 1))
			for i := uint64(0); !stop.Load(); i++ {
				val := []byte(fmt.Sprintf("n%d-%d", n, i))
				if err := sess.Write(key+i%100, val); err != nil {
					return
				}
				if err := sess.ReleaseWrite(key+999, val); err != nil {
					return
				}
				if _, err := sess.AcquireRead(key + 999); err != nil {
					return
				}
				ops[n].Add(3)
			}
		}(n)
	}

	sample := func(label string) {
		var before [5]uint64
		for i := range before {
			before[i] = ops[i].Load()
		}
		time.Sleep(100 * time.Millisecond)
		var total uint64
		for i := range before {
			total += ops[i].Load() - before[i]
		}
		fmt.Printf("%-22s %6d ops / 100ms\n", label, total)
	}

	sample("steady state:")

	fmt.Printf("--- replica %d goes to sleep for 400ms ---\n", sleeper)
	cluster.PauseNode(sleeper, 400*time.Millisecond)
	sample("during sleep (t+100):")
	sample("during sleep (t+200):")
	sample("during sleep (t+300):")

	time.Sleep(200 * time.Millisecond) // let it wake and recover
	sample("after wake-up:")

	// The woken replica reads through the slow path once per key, then is
	// back to local reads.
	sess := cluster.Session(sleeper, 0)
	if _, err := sess.AcquireRead(1999); err != nil {
		log.Fatal(err)
	}
	v, err := sess.Read(1000) // refreshed via one quorum round
	if err != nil {
		log.Fatal(err)
	}
	stats := cluster.NodeStats(sleeper)
	fmt.Printf("woken replica: read key 1000 = %q; slow-path stats: %d slow reads, %d epoch bumps\n",
		v, stats.SlowReads, stats.EpochBumps)

	stop.Store(true)
	time.Sleep(50 * time.Millisecond)
	fmt.Println("cluster stayed available throughout — majority quorums never blocked")
}
