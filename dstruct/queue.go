package dstruct

import "kite"

// Queue is a Michael-Scott queue (§8.3 workload 2; the paper evaluates MSQ-4
// and MSQ-32 — objects of 4 and 32 discrete 32-byte fields). Head and tail
// pointers and each node's next pointer are swung by CAS; helping (swinging
// a lagging tail) follows the original algorithm.
//
// The queue is anchored at two application keys: baseKey (head pointer) and
// baseKey+1 (tail pointer). InitQueue must run once per queue before any
// session attaches.
type Queue struct {
	sess    kite.Session
	arena   *Arena
	headKey uint64
	tailKey uint64
	fields  int
	weak    bool
}

// InitQueue creates the queue's dummy node and publishes head and tail.
// Call exactly once per queue (e.g. from the deployment's setup session).
func InitQueue(sess kite.Session, baseKey uint64, fields int, owner uint64) error {
	arena := NewArena(owner, 1+fields)
	dummy := arena.Alloc()
	// The dummy's next pointer starts null.
	if err := sess.Write(dummy, EncodePtr(Ptr{})); err != nil {
		return err
	}
	ptr := EncodePtr(Ptr{Key: dummy, Cnt: 1})
	// Releases publish the anchor pointers so any session's acquire sees
	// a fully initialised queue.
	if err := sess.ReleaseWrite(baseKey, ptr); err != nil {
		return err
	}
	return sess.ReleaseWrite(baseKey+1, ptr)
}

// NewQueue attaches a session to the queue anchored at baseKey.
func NewQueue(sess kite.Session, baseKey uint64, fields int, owner uint64, weakCAS bool) *Queue {
	return &Queue{
		sess:    sess,
		arena:   NewArena(owner, 1+fields),
		headKey: baseKey,
		tailKey: baseKey + 1,
		fields:  fields,
		weak:    weakCAS,
	}
}

// Enqueue appends an object of q.fields payload fields.
func (q *Queue) Enqueue(fields [][]byte) error {
	if len(fields) != q.fields {
		return ErrCorrupt
	}
	nodeKey := q.arena.Alloc()
	if err := writeFields(q.sess, nodeKey, fields); err != nil {
		return err
	}
	if err := q.sess.Write(nodeKey, EncodePtr(Ptr{})); err != nil { // next = null
		return err
	}
	for {
		tailRaw, err := q.sess.AcquireRead(q.tailKey)
		if err != nil {
			return err
		}
		tail := DecodePtr(tailRaw)
		if tail.IsNull() {
			return ErrCorrupt // queue not initialised
		}
		nextRaw, err := q.sess.AcquireRead(tail.Key)
		if err != nil {
			return err
		}
		next := DecodePtr(nextRaw)
		if !next.IsNull() {
			// Tail lags: help swing it, then retry.
			_, _, err = q.sess.CompareAndSwap(q.tailKey, tailRaw,
				EncodePtr(Ptr{Key: next.Key, Cnt: tail.Cnt + 1}), q.weak)
			if err != nil {
				return err
			}
			continue
		}
		// Link the node at the end (the CAS's release semantics publish
		// the payload written above).
		newPtr := Ptr{Key: nodeKey, Cnt: next.Cnt + 1}
		swapped, _, err := q.sess.CompareAndSwap(tail.Key, nextRaw, EncodePtr(newPtr), q.weak)
		if err != nil {
			return err
		}
		if swapped {
			// Swing the tail; failure is fine — someone helped.
			_, _, _ = q.sess.CompareAndSwap(q.tailKey, tailRaw,
				EncodePtr(Ptr{Key: nodeKey, Cnt: tail.Cnt + 1}), true)
			return nil
		}
	}
}

// Dequeue removes the oldest object; ok is false when the queue is empty.
func (q *Queue) Dequeue() (fields [][]byte, ok bool, err error) {
	for {
		headRaw, err := q.sess.AcquireRead(q.headKey)
		if err != nil {
			return nil, false, err
		}
		head := DecodePtr(headRaw)
		if head.IsNull() {
			return nil, false, ErrCorrupt // queue not initialised
		}
		tailRaw, err := q.sess.Read(q.tailKey) // relaxed: only a hint
		if err != nil {
			return nil, false, err
		}
		tail := DecodePtr(tailRaw)
		nextRaw, err := q.sess.AcquireRead(head.Key)
		if err != nil {
			return nil, false, err
		}
		next := DecodePtr(nextRaw)
		if next.IsNull() {
			return nil, false, nil // empty
		}
		if head.Key == tail.Key {
			// Tail lags behind a non-empty queue: help swing it.
			_, _, err = q.sess.CompareAndSwap(q.tailKey, tailRaw,
				EncodePtr(Ptr{Key: next.Key, Cnt: tail.Cnt + 1}), true)
			if err != nil {
				return nil, false, err
			}
			continue
		}
		// Read the payload before the CAS (the node may be recycled by
		// another dequeuer afterwards in the classic algorithm; here keys
		// are never reused, but we keep the original's order).
		payload, err := readFields(q.sess, next.Key, q.fields)
		if err != nil {
			return nil, false, err
		}
		swapped, _, err := q.sess.CompareAndSwap(q.headKey, headRaw,
			EncodePtr(Ptr{Key: next.Key, Cnt: head.Cnt + 1}), q.weak)
		if err != nil {
			return nil, false, err
		}
		if swapped {
			return payload, true, nil
		}
	}
}
