package dstruct

import (
	"context"

	"kite"
)

// List is a Harris-Michael lock-free sorted linked list (§8.3 workload 3:
// HML). Nodes carry a sort key; deletion is two-phase — logically mark the
// node's next pointer, then physically unlink with a CAS on the
// predecessor. Traversals help unlink marked nodes they encounter, exactly
// as in the shared-memory original.
//
// The list is anchored at headKey (the head sentinel's next pointer).
type List struct {
	sess    kite.Session
	arena   *Arena
	headKey uint64
	fields  int
	weak    bool
}

// NewList attaches a session to the list anchored at headKey. An empty list
// needs no initialisation: a null head pointer is the empty list.
func NewList(sess kite.Session, headKey uint64, fields int, owner uint64, weakCAS bool) *List {
	return &List{
		sess:    sess,
		arena:   NewArena(owner, 2+fields), // node: next ptr + sort key + fields
		headKey: headKey,
		fields:  fields,
		weak:    weakCAS,
	}
}

// node layout: nodeKey holds the next pointer; nodeKey+1 holds the 8-byte
// sort key; payload fields follow.
func (l *List) sortKeyOf(nodeKey uint64) (uint64, error) {
	v, err := l.sess.Read(nodeKey + 1)
	if err != nil {
		return 0, err
	}
	return kite.DecodeUint64(v), nil
}

// search returns the first unmarked node with sort key >= k and its
// predecessor pointer location (the head anchor or a node's next key),
// helping to unlink marked nodes along the way.
func (l *List) search(k uint64) (prevPtrKey uint64, prevRaw []byte, cur Ptr, err error) {
retry:
	prevPtrKey = l.headKey
	prevRaw, err = l.sess.AcquireRead(prevPtrKey)
	if err != nil {
		return 0, nil, Ptr{}, err
	}
	cur = DecodePtr(prevRaw)
	for !cur.IsNull() {
		nextRaw, err := l.sess.AcquireRead(cur.Key)
		if err != nil {
			return 0, nil, Ptr{}, err
		}
		next := DecodePtr(nextRaw)
		if next.Mark {
			// cur is logically deleted: help unlink it from prev.
			unlinked := EncodePtr(Ptr{Key: next.Key, Cnt: cur.Cnt + 1, Mark: false})
			swapped, _, err := l.sess.CompareAndSwap(prevPtrKey, prevRaw, unlinked, l.weak)
			if err != nil {
				return 0, nil, Ptr{}, err
			}
			if !swapped {
				goto retry
			}
			prevRaw = unlinked
			cur = DecodePtr(unlinked)
			continue
		}
		ck, err := l.sortKeyOf(cur.Key)
		if err != nil {
			return 0, nil, Ptr{}, err
		}
		if ck >= k {
			return prevPtrKey, prevRaw, cur, nil
		}
		prevPtrKey = cur.Key
		prevRaw = nextRaw
		cur = next
	}
	return prevPtrKey, prevRaw, Ptr{}, nil
}

// Insert adds sort key k with the given payload; it returns false if k is
// already present.
func (l *List) Insert(k uint64, fields [][]byte) (bool, error) {
	if len(fields) != l.fields {
		return false, ErrCorrupt
	}
	for {
		prevPtrKey, prevRaw, cur, err := l.search(k)
		if err != nil {
			return false, err
		}
		if !cur.IsNull() {
			ck, err := l.sortKeyOf(cur.Key)
			if err != nil {
				return false, err
			}
			if ck == k {
				return false, nil // already present
			}
		}
		// Write the sort key, the payload and the node's next pointer as
		// one batch of relaxed writes (session order preserved; one
		// datagram remotely), then publish the node with the CAS on prev
		// (release semantics make the payload visible).
		nodeKey := l.arena.Alloc()
		ops := make([]kite.Op, 0, 2+len(fields))
		ops = append(ops, kite.WriteOp(nodeKey+1, kite.EncodeUint64(k)))
		for i, f := range fields {
			ops = append(ops, kite.WriteOp(nodeKey+2+uint64(i), f))
		}
		ops = append(ops, kite.WriteOp(nodeKey, EncodePtr(Ptr{Key: cur.Key, Cnt: 1})))
		if _, err := l.sess.DoBatch(context.Background(), ops); err != nil {
			return false, err
		}
		prev := DecodePtr(prevRaw)
		newPtr := EncodePtr(Ptr{Key: nodeKey, Cnt: prev.Cnt + 1})
		swapped, _, err := l.sess.CompareAndSwap(prevPtrKey, prevRaw, newPtr, l.weak)
		if err != nil {
			return false, err
		}
		if swapped {
			return true, nil
		}
	}
}

// Delete removes sort key k; it returns false if k is not present.
func (l *List) Delete(k uint64) (bool, error) {
	for {
		prevPtrKey, prevRaw, cur, err := l.search(k)
		if err != nil {
			return false, err
		}
		if cur.IsNull() {
			return false, nil
		}
		ck, err := l.sortKeyOf(cur.Key)
		if err != nil {
			return false, err
		}
		if ck != k {
			return false, nil
		}
		// Phase 1: mark cur's next pointer (logical delete).
		nextRaw, err := l.sess.AcquireRead(cur.Key)
		if err != nil {
			return false, err
		}
		next := DecodePtr(nextRaw)
		if next.Mark {
			continue // someone else is deleting it; retry from search
		}
		marked := EncodePtr(Ptr{Key: next.Key, Cnt: next.Cnt + 1, Mark: true})
		swapped, _, err := l.sess.CompareAndSwap(cur.Key, nextRaw, marked, l.weak)
		if err != nil {
			return false, err
		}
		if !swapped {
			continue
		}
		// Phase 2: physically unlink (best effort; traversals help).
		unlinked := EncodePtr(Ptr{Key: next.Key, Cnt: DecodePtr(prevRaw).Cnt + 1})
		_, _, _ = l.sess.CompareAndSwap(prevPtrKey, prevRaw, unlinked, true)
		return true, nil
	}
}

// Contains reports whether sort key k is present.
func (l *List) Contains(k uint64) (bool, error) {
	_, _, cur, err := l.search(k)
	if err != nil || cur.IsNull() {
		return false, err
	}
	ck, err := l.sortKeyOf(cur.Key)
	return err == nil && ck == k, err
}

// Fields returns the payload of the node with sort key k, if present.
func (l *List) Fields(k uint64) ([][]byte, bool, error) {
	_, _, cur, err := l.search(k)
	if err != nil || cur.IsNull() {
		return nil, false, err
	}
	ck, err := l.sortKeyOf(cur.Key)
	if err != nil || ck != k {
		return nil, false, err
	}
	ops := make([]kite.Op, l.fields)
	for i := 0; i < l.fields; i++ {
		ops[i] = kite.ReadOp(cur.Key + 2 + uint64(i))
	}
	results, err := l.sess.DoBatch(context.Background(), ops)
	if err != nil {
		return nil, false, err
	}
	out := make([][]byte, l.fields)
	for i := range results {
		out[i] = results[i].Value
	}
	return out, true, nil
}
