package dstruct

import "kite"

// Stack is a Treiber stack (§8.3 workload 1): a single top pointer swung by
// CAS, nodes published by the CAS's release semantics, observed by the
// acquire semantics of the pointer loads.
type Stack struct {
	sess   kite.Session
	arena  *Arena
	topKey uint64
	fields int
	// weak selects the weak CAS for pointer swings (fails locally on a
	// stale comparison — the paper's conflict-mitigation knob).
	weak bool
}

// NewStack attaches a session to the stack anchored at topKey. Every
// session of the deployment may attach to the same topKey; owner must be a
// deployment-unique session id for node allocation.
func NewStack(sess kite.Session, topKey uint64, fields int, owner uint64, weakCAS bool) *Stack {
	return &Stack{
		sess:   sess,
		arena:  NewArena(owner, 1+fields),
		topKey: topKey,
		fields: fields,
		weak:   weakCAS,
	}
}

// Push writes the object's fields with relaxed writes, then publishes the
// node with a CAS on the top pointer (release semantics). It returns the
// number of CAS attempts (1 = conflict-free).
func (s *Stack) Push(fields [][]byte) (attempts int, err error) {
	if len(fields) != s.fields {
		return 0, ErrCorrupt
	}
	nodeKey := s.arena.Alloc()
	if err := writeFields(s.sess, nodeKey, fields); err != nil {
		return 0, err
	}
	for {
		attempts++
		cur, err := s.sess.AcquireRead(s.topKey)
		if err != nil {
			return attempts, err
		}
		top := DecodePtr(cur)
		// Link the new node to the current top (relaxed write: the
		// publishing CAS below is the release).
		if err := s.sess.Write(nodeKey, EncodePtr(top)); err != nil {
			return attempts, err
		}
		newTop := EncodePtr(Ptr{Key: nodeKey, Cnt: top.Cnt + 1})
		swapped, _, err := s.sess.CompareAndSwap(s.topKey, cur, newTop, s.weak)
		if err != nil {
			return attempts, err
		}
		if swapped {
			return attempts, nil
		}
	}
}

// Pop removes the top object and returns its fields; ok is false when the
// stack is empty. The winning CAS's acquire semantics make the node's
// payload (written before the push's release) visible to the relaxed reads.
func (s *Stack) Pop() (fields [][]byte, ok bool, err error) {
	for {
		cur, err := s.sess.AcquireRead(s.topKey)
		if err != nil {
			return nil, false, err
		}
		top := DecodePtr(cur)
		if top.IsNull() {
			return nil, false, nil
		}
		// The acquire above synchronises with the release (CAS) that
		// published top, so the node's next pointer reads fresh.
		nextRaw, err := s.sess.Read(top.Key)
		if err != nil {
			return nil, false, err
		}
		next := DecodePtr(nextRaw)
		newTop := EncodePtr(Ptr{Key: next.Key, Cnt: top.Cnt + 1})
		swapped, _, err := s.sess.CompareAndSwap(s.topKey, cur, newTop, s.weak)
		if err != nil {
			return nil, false, err
		}
		if !swapped {
			continue
		}
		fields, err = readFields(s.sess, top.Key, s.fields)
		return fields, true, err
	}
}
