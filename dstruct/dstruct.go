// Package dstruct ports three widely used lock-free shared-memory data
// structures onto the Kite API, exactly as the paper's §8.3 evaluation does:
//
//   - the Treiber stack (Treiber 1986),
//   - the Michael-Scott queue (Michael & Scott 1996), and
//   - the Harris-Michael sorted list (Harris 2001, Michael 2002),
//
// demonstrating the paper's thesis that Release Consistency's familiar API
// provides a pathway for the seamless porting of fault-tolerant shared
// memory algorithms to distributed KVSs. The ports follow the shared-memory
// originals: object payload fields are written with relaxed writes, pointer
// loads that must observe other sessions' publications are acquire reads,
// and pointer swings are CASes (whose RMW read/write carry acquire/release
// semantics automatically, Table 1). ABA counters ride alongside every
// pointer, as in the paper's port (§8.3).
//
// The structures are written against the unified kite.Session interface,
// so the same code runs over an in-process kite.Cluster or a remote
// deployment through kite/client. Bulk payload accesses go through
// DoBatch — over the remote backend an object's fields travel in one
// datagram instead of one round trip per field.
//
// Under contention the structures lean on Kite's weak CAS, which fails
// locally when the comparison fails against the local replica's value —
// the conflict-mitigation trick §8.3 describes.
package dstruct

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"kite"
)

// ErrCorrupt reports a structural invariant violation (e.g. a node read
// back with inconsistent metadata — the §8.3 correctness checks).
var ErrCorrupt = errors.New("dstruct: corrupted structure")

// MaxFields bounds the per-object payload field count (the paper evaluates
// 4- and 32-field objects).
const MaxFields = 32

// Ptr is a tagged pointer: a node's key plus an ABA counter and (for the
// Harris-Michael list) a logical-deletion mark. The zero Ptr is null.
type Ptr struct {
	Key  uint64
	Cnt  uint64 // ABA counter (63 bits) — bumped on every successful swing
	Mark bool   // logical deletion mark (list only)
}

// IsNull reports whether p is the null pointer.
func (p Ptr) IsNull() bool { return p.Key == 0 }

// Next returns p's successor counter value preserving the key.
func (p Ptr) String() string {
	m := ""
	if p.Mark {
		m = "*"
	}
	return fmt.Sprintf("%d@%d%s", p.Key, p.Cnt, m)
}

const ptrLen = 16

// EncodePtr renders p in its 16-byte wire form.
func EncodePtr(p Ptr) []byte {
	b := make([]byte, ptrLen)
	binary.LittleEndian.PutUint64(b, p.Key)
	cnt := p.Cnt &^ (1 << 63)
	if p.Mark {
		cnt |= 1 << 63
	}
	binary.LittleEndian.PutUint64(b[8:], cnt)
	return b
}

// DecodePtr parses a pointer value; absent/short values decode as null.
func DecodePtr(b []byte) Ptr {
	if len(b) < ptrLen {
		return Ptr{}
	}
	raw := binary.LittleEndian.Uint64(b[8:])
	return Ptr{
		Key:  binary.LittleEndian.Uint64(b),
		Cnt:  raw &^ (1 << 63),
		Mark: raw&(1<<63) != 0,
	}
}

// Arena allocates globally unique node keys for one session. Node keys live
// in the top half of the key space (bit 63 set) so they never collide with
// application keys; uniqueness across sessions comes from the owner tag.
type Arena struct {
	next   uint64
	stride uint64
	tag    uint64
}

// NewArena creates an allocator for a session. owner must be unique across
// all (session, structure) pairs of the deployment — two arenas with the
// same owner hand out colliding node keys (e.g. use
// (node<<20 | sessionIndex<<4 | structureIndex)); stride is the number of
// consecutive keys each node occupies (1 + field count).
func NewArena(owner uint64, stride int) *Arena {
	return &Arena{tag: 1<<63 | owner<<32, stride: uint64(stride), next: 1}
}

// Alloc returns the next node key.
func (a *Arena) Alloc() uint64 {
	k := a.tag | a.next
	a.next += a.stride
	return k
}

// fieldKey returns the key of payload field i of the node at nodeKey.
func fieldKey(nodeKey uint64, i int) uint64 { return nodeKey + 1 + uint64(i) }

// writeFields writes an object's payload with relaxed writes — the cheap
// accesses the RC API exists to keep cheap (the producer side of Figure 1).
// The writes go out as one batch: session order is preserved, and over the
// remote backend the whole payload fits one request datagram.
func writeFields(s kite.Session, nodeKey uint64, fields [][]byte) error {
	ops := make([]kite.Op, len(fields))
	for i, f := range fields {
		ops[i] = kite.WriteOp(fieldKey(nodeKey, i), f)
	}
	_, err := s.DoBatch(context.Background(), ops)
	return err
}

// readFields reads an object's payload with relaxed reads; visibility is
// guaranteed by the acquire semantics of the pointer load that led here.
func readFields(s kite.Session, nodeKey uint64, n int) ([][]byte, error) {
	ops := make([]kite.Op, n)
	for i := 0; i < n; i++ {
		ops[i] = kite.ReadOp(fieldKey(nodeKey, i))
	}
	results, err := s.DoBatch(context.Background(), ops)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}
