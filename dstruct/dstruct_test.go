// The structure tests run UNMODIFIED against both Session backends — the
// in-process cluster and remote client sessions over a loopback-UDP 3-node
// deployment — via the shared kite.Session interface: each test body takes
// a (node, session) -> kite.Session factory and is executed once per
// backend.
package dstruct

import (
	"fmt"
	"sync"
	"testing"

	"kite"
	"kite/internal/testcluster"
)

// sessionFn hands out a session on a given replica; sess distinguishes
// independent sessions of one test.
type sessionFn func(node, sess int) kite.Session

// forEachBackend runs body against a fresh deployment of each backend.
func forEachBackend(t *testing.T, body func(t *testing.T, session sessionFn)) {
	t.Run("inproc", func(t *testing.T) {
		c, err := kite.NewCluster(kite.Options{
			Nodes: 3, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		body(t, func(node, sess int) kite.Session { return c.Session(node, sess) })
	})
	t.Run("remote", func(t *testing.T) {
		cl := testcluster.Start(t, 3)
		clients := cl.Dial(t)
		var mu sync.Mutex
		leased := map[[2]int]kite.Session{}
		body(t, func(node, sess int) kite.Session {
			mu.Lock()
			defer mu.Unlock()
			key := [2]int{node, sess}
			if s, ok := leased[key]; ok {
				return s
			}
			s, err := clients[node].NewSession()
			if err != nil {
				t.Fatalf("lease session on node %d: %v", node, err)
			}
			leased[key] = s
			return s
		})
	})
}

func TestPtrCodec(t *testing.T) {
	cases := []Ptr{
		{},
		{Key: 1, Cnt: 0},
		{Key: 1<<63 | 42, Cnt: 7},
		{Key: 5, Cnt: 9, Mark: true},
		{Key: 5, Cnt: 1<<62 - 1, Mark: true},
	}
	for _, p := range cases {
		got := DecodePtr(EncodePtr(p))
		if got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	if !DecodePtr(nil).IsNull() || !DecodePtr([]byte{1, 2}).IsNull() {
		t.Error("short values should decode as null")
	}
	if (Ptr{Key: 3}).String() != "3@0" || (Ptr{Key: 3, Mark: true}).String() != "3@0*" {
		t.Error("ptr strings")
	}
}

func TestArenaUnique(t *testing.T) {
	a := NewArena(1, 5)
	b := NewArena(2, 5)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		for _, k := range []uint64{a.Alloc(), b.Alloc()} {
			if seen[k] {
				t.Fatalf("key %x allocated twice", k)
			}
			if k&(1<<63) == 0 {
				t.Fatalf("key %x not in node key space", k)
			}
			seen[k] = true
		}
	}
}

func TestStackSequential(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		s := NewStack(session(0, 0), 100, 2, 1, true)
		if _, ok, _ := s.Pop(); ok {
			t.Fatal("fresh stack not empty")
		}
		for i := 0; i < 10; i++ {
			f := [][]byte{[]byte(fmt.Sprintf("a%d", i)), []byte(fmt.Sprintf("b%d", i))}
			if _, err := s.Push(f); err != nil {
				t.Fatal(err)
			}
		}
		for i := 9; i >= 0; i-- {
			fields, ok, err := s.Pop()
			if err != nil || !ok {
				t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
			}
			if string(fields[0]) != fmt.Sprintf("a%d", i) || string(fields[1]) != fmt.Sprintf("b%d", i) {
				t.Fatalf("pop %d: LIFO violated: %q %q", i, fields[0], fields[1])
			}
		}
		if _, ok, _ := s.Pop(); ok {
			t.Fatal("drained stack not empty")
		}
	})
}

func TestStackConcurrent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		// Sessions on different replicas push then pop (the §8.3 bench
		// pattern); every pushed payload must be popped exactly once, and no
		// pop may find the stack empty mid-run (each session pops right after
		// its own push).
		const perSession = 20
		workers := []struct{ node, sess int }{{0, 0}, {1, 0}, {2, 0}, {0, 1}}
		var mu sync.Mutex
		popped := map[string]int{}
		var wg sync.WaitGroup
		for wid, w := range workers {
			wg.Add(1)
			go func(wid int, node, sess int) {
				defer wg.Done()
				st := NewStack(session(node, sess), 200, 1, uint64(100+wid), true)
				for i := 0; i < perSession; i++ {
					payload := fmt.Sprintf("w%d-%d", wid, i)
					if _, err := st.Push([][]byte{[]byte(payload)}); err != nil {
						t.Errorf("push: %v", err)
						return
					}
					fields, ok, err := st.Pop()
					if err != nil || !ok {
						t.Errorf("pop after push found empty stack: ok=%v err=%v", ok, err)
						return
					}
					mu.Lock()
					popped[string(fields[0])]++
					mu.Unlock()
				}
			}(wid, w.node, w.sess)
		}
		wg.Wait()
		if len(popped) != len(workers)*perSession {
			t.Fatalf("popped %d distinct payloads, want %d", len(popped), len(workers)*perSession)
		}
		for p, n := range popped {
			if n != 1 {
				t.Errorf("payload %q popped %d times", p, n)
			}
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		setup := session(0, 2)
		if err := InitQueue(setup, 300, 1, 999); err != nil {
			t.Fatal(err)
		}
		q := NewQueue(session(1, 0), 300, 1, 7, true)
		if _, ok, _ := q.Dequeue(); ok {
			t.Fatal("fresh queue not empty")
		}
		for i := 0; i < 10; i++ {
			if err := q.Enqueue([][]byte{[]byte(fmt.Sprintf("m%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			fields, ok, err := q.Dequeue()
			if err != nil || !ok {
				t.Fatalf("dequeue %d: ok=%v err=%v", i, ok, err)
			}
			if string(fields[0]) != fmt.Sprintf("m%d", i) {
				t.Fatalf("FIFO violated at %d: %q", i, fields[0])
			}
		}
		if _, ok, _ := q.Dequeue(); ok {
			t.Fatal("drained queue not empty")
		}
	})
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		if err := InitQueue(session(0, 3), 400, 1, 998); err != nil {
			t.Fatal(err)
		}
		const perProducer = 15
		var wg sync.WaitGroup
		// Two producers on different nodes.
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				q := NewQueue(session(p, 0), 400, 1, uint64(200+p), true)
				for i := 0; i < perProducer; i++ {
					if err := q.Enqueue([][]byte{[]byte(fmt.Sprintf("p%d-%d", p, i))}); err != nil {
						t.Errorf("enqueue: %v", err)
						return
					}
				}
			}(p)
		}
		// Two consumers drain exactly the produced count. (Per-producer FIFO
		// holds at the queue, but two concurrent consumers may RECORD their
		// dequeues out of order, so only exactly-once and completeness are
		// asserted here; ordering is covered by TestQueueFIFO.)
		var mu sync.Mutex
		got := map[string]bool{}
		for cid := 0; cid < 2; cid++ {
			wg.Add(1)
			go func(cid int) {
				defer wg.Done()
				q := NewQueue(session(2, cid), 400, 1, uint64(300+cid), true)
				for {
					mu.Lock()
					if len(got) >= 2*perProducer {
						mu.Unlock()
						return
					}
					mu.Unlock()
					fields, ok, err := q.Dequeue()
					if err != nil {
						t.Errorf("dequeue: %v", err)
						return
					}
					if !ok {
						continue
					}
					mu.Lock()
					if got[string(fields[0])] {
						t.Errorf("duplicate dequeue %q", fields[0])
					}
					got[string(fields[0])] = true
					mu.Unlock()
				}
			}(cid)
		}
		wg.Wait()
		if len(got) != 2*perProducer {
			t.Fatalf("dequeued %d, want %d", len(got), 2*perProducer)
		}
	})
}

func TestListBasicOps(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		l := NewList(session(0, 0), 500, 1, 11, true)
		for _, k := range []uint64{30, 10, 20} {
			ok, err := l.Insert(k, [][]byte{[]byte(fmt.Sprintf("v%d", k))})
			if err != nil || !ok {
				t.Fatalf("insert %d: ok=%v err=%v", k, ok, err)
			}
		}
		// Duplicate insert fails.
		if ok, _ := l.Insert(20, [][]byte{[]byte("dup")}); ok {
			t.Fatal("duplicate insert succeeded")
		}
		for _, k := range []uint64{10, 20, 30} {
			if ok, _ := l.Contains(k); !ok {
				t.Fatalf("missing key %d", k)
			}
		}
		if ok, _ := l.Contains(15); ok {
			t.Fatal("phantom key 15")
		}
		fields, ok, err := l.Fields(20)
		if err != nil || !ok || string(fields[0]) != "v20" {
			t.Fatalf("Fields(20) = %q %v %v", fields, ok, err)
		}
		// Delete the middle node, re-check.
		if ok, _ := l.Delete(20); !ok {
			t.Fatal("delete 20 failed")
		}
		if ok, _ := l.Contains(20); ok {
			t.Fatal("deleted key still present")
		}
		if ok, _ := l.Delete(20); ok {
			t.Fatal("double delete succeeded")
		}
		for _, k := range []uint64{10, 30} {
			if ok, _ := l.Contains(k); !ok {
				t.Fatalf("collateral damage: %d gone", k)
			}
		}
		// Re-insert after delete works.
		if ok, _ := l.Insert(20, [][]byte{[]byte("v20b")}); !ok {
			t.Fatal("re-insert failed")
		}
	})
}

func TestListConcurrentDisjoint(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		// Sessions insert disjoint key ranges concurrently; all must be present.
		var wg sync.WaitGroup
		const perSession = 10
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				l := NewList(session(w, 0), 600, 1, uint64(400+w), true)
				for i := 0; i < perSession; i++ {
					k := uint64(w*100 + i)
					if ok, err := l.Insert(k, [][]byte{[]byte("x")}); err != nil || !ok {
						t.Errorf("insert %d: ok=%v err=%v", k, ok, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		l := NewList(session(0, 1), 600, 1, 500, true)
		for w := 0; w < 3; w++ {
			for i := 0; i < perSession; i++ {
				if ok, err := l.Contains(uint64(w*100 + i)); err != nil || !ok {
					t.Fatalf("key %d missing: ok=%v err=%v", w*100+i, ok, err)
				}
			}
		}
	})
}

func TestListConcurrentSameKeys(t *testing.T) {
	forEachBackend(t, func(t *testing.T, session sessionFn) {
		// All sessions fight over the same small key range with inserts and
		// deletes; afterwards each key is either present or absent — traversal
		// must never error or loop.
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				l := NewList(session(w, 0), 700, 1, uint64(600+w), true)
				for i := 0; i < 20; i++ {
					k := uint64(i % 5)
					if i%2 == 0 {
						if _, err := l.Insert(k, [][]byte{[]byte("x")}); err != nil {
							t.Errorf("insert: %v", err)
						}
					} else {
						if _, err := l.Delete(k); err != nil {
							t.Errorf("delete: %v", err)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		l := NewList(session(0, 1), 700, 1, 700, true)
		for k := uint64(0); k < 5; k++ {
			if _, err := l.Contains(k); err != nil {
				t.Fatalf("final contains(%d): %v", k, err)
			}
		}
	})
}
